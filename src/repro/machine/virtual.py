"""The virtual machine: ranks, virtual clocks, and cost charging.

:class:`VirtualMachine` hosts ``p`` virtual ranks.  SPMD phase code runs
rank-by-rank inside one Python process on real NumPy data; the machine
advances per-rank *virtual clocks* according to the two-level cost model
and logs message traffic in :class:`repro.machine.stats.CommStats`.

Execution is bulk-synchronous: communication calls end in a barrier by
default, so elapsed virtual time is the sum over phases of the slowest
rank's cost — matching the paper's §4 analysis, where every phase bound
is ``max`` over processors of compute + communication.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.machine.model import MachineModel
from repro.machine.stats import CommStats
from repro.util import require
from repro.util.errors import InvalidRankError
from repro.util.opcount import OpCounter

__all__ = ["VirtualMachine"]


class VirtualMachine:
    """A ``p``-rank virtual distributed-memory machine.

    Parameters
    ----------
    p:
        Number of virtual processors.
    model:
        Cost model; defaults to :meth:`MachineModel.cm5`.
    strict_ops:
        Raise on charging an op category the model has no weight for,
        instead of the model's warn-once-and-charge-1.0 default.  Wired
        from ``SimulationConfig(guards="strict")``.

    Attributes
    ----------
    clocks:
        Per-rank virtual clocks in seconds.
    compute_time, comm_time:
        Cumulative per-rank compute / communication charges (used to
        split "computation" from "overhead" like Figures 21–22).
    stats:
        The :class:`CommStats` ledger of message traffic.
    ops:
        An :class:`~repro.util.opcount.OpCounter` of all abstract
        operations charged (summed over ranks, keyed by category) —
        the machine-independent work record the bench harness exports.
    """

    def __init__(
        self, p: int, model: MachineModel | None = None, *, strict_ops: bool = False
    ) -> None:
        require(p >= 1, f"p must be >= 1, got {p}")
        self.p = p
        self.model = model if model is not None else MachineModel.cm5()
        self.strict_ops = bool(strict_ops)
        self.clocks = np.zeros(p)
        self.compute_time = np.zeros(p)
        self.comm_time = np.zeros(p)
        self.stats = CommStats(p)
        self.ops = OpCounter()
        self.phase_time: dict[str, np.ndarray] = defaultdict(lambda: np.zeros(self.p))
        self._phase_stack: list[str] = []
        #: optional :class:`repro.machine.faults.FaultInjector`; ``None``
        #: (the default) keeps every hot path on a single dormant branch,
        #: so accounting is bit-identical to a machine without fault
        #: machinery.
        self.fault_injector = None
        #: optional :class:`repro.telemetry.spans.SpanTracer`; when set,
        #: :meth:`phase` reports each (phase, rank) clock interval to it.
        #: Like the fault injector, ``None`` (the default) leaves a single
        #: dormant branch on the phase path — the tracer only *observes*
        #: the clocks, it never charges them, so accounting is identical
        #: with and without it.
        self.tracer = None
        #: optional :class:`repro.obs.profile.PhaseProfiler`; when set,
        #: :meth:`phase` opens a host-wall-clock section per phase so
        #: kernel-level timings nest under their phase.  Same dormant
        #: contract as the tracer: ``None`` leaves a single ``is None``
        #: branch, and the profiler measures *host* time only — the
        #: virtual clocks and op counts are untouched either way.
        self.profiler = None

    def install_faults(self, plan) -> "VirtualMachine":
        """Attach a :class:`~repro.machine.faults.FaultPlan` (or injector).

        Passing ``None`` removes any installed injector.  Returns
        ``self`` for chaining.
        """
        from repro.machine.faults import FaultInjector, FaultPlan

        if plan is None:
            self.fault_injector = None
        elif isinstance(plan, FaultInjector):
            self.fault_injector = plan
        elif isinstance(plan, FaultPlan):
            self.fault_injector = FaultInjector(plan)
        else:
            raise TypeError(f"expected FaultPlan or FaultInjector, got {type(plan).__name__}")
        return self

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    @property
    def current_phase(self) -> str:
        """Label under which costs/statistics are currently recorded."""
        return self._phase_stack[-1] if self._phase_stack else "default"

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scope costs and statistics under phase ``name``.

        With a tracer attached the per-rank clock values at entry and
        exit are reported as one span per participating rank; the clocks
        themselves are never touched.
        """
        tracer = self.tracer
        start = self.clocks.copy() if tracer is not None else None
        profiler = self.profiler
        if profiler is not None:
            profiler.push(name)
        self._phase_stack.append(name)
        try:
            yield
        finally:
            depth = len(self._phase_stack)
            self._phase_stack.pop()
            if tracer is not None:
                tracer.record_phase(name, start, self.clocks, depth=depth)
            if profiler is not None:
                profiler.pop(name)

    # ------------------------------------------------------------------
    # time accounting
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Virtual seconds since construction (slowest rank's clock)."""
        return float(self.clocks.max())

    def barrier(self) -> None:
        """Synchronize all ranks to the slowest clock."""
        self.clocks[:] = self.clocks.max()

    def _charge(self, seconds: np.ndarray, *, kind: str) -> None:
        seconds = np.broadcast_to(np.asarray(seconds, dtype=float), (self.p,))
        if seconds.min() < 0:
            raise ValueError("cannot charge negative time")
        if self.fault_injector is not None:
            seconds = self.fault_injector.scale_charge(seconds, kind, self.current_phase)
        self.clocks += seconds
        self.phase_time[self.current_phase] = self.phase_time[self.current_phase] + seconds
        if kind == "compute":
            self.compute_time += seconds
        elif kind == "comm":
            self.comm_time += seconds
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown charge kind {kind!r}")

    def charge_ops(self, category: str, counts: float | np.ndarray) -> None:
        """Charge per-rank computation: ``counts`` operations of ``category``.

        ``counts`` may be a scalar (same on every rank) or an array of
        length ``p``.
        """
        counts = np.broadcast_to(np.asarray(counts, dtype=float), (self.p,))
        self.ops.add(category, float(counts.sum()))
        seconds = np.array(
            [self.model.compute_cost(category, c, strict=self.strict_ops) for c in counts]
        )
        self._charge(seconds, kind="compute")

    def charge_compute_seconds(self, seconds: float | np.ndarray) -> None:
        """Charge pre-computed per-rank compute seconds."""
        self._charge(np.asarray(seconds, dtype=float), kind="compute")

    def charge_comm_seconds(self, seconds: float | np.ndarray) -> None:
        """Charge pre-computed per-rank communication seconds."""
        self._charge(np.asarray(seconds, dtype=float), kind="comm")

    # ------------------------------------------------------------------
    # point-to-point bulk exchange (the paper's All-to-many_COMM)
    # ------------------------------------------------------------------
    def alltoallv(
        self,
        send: list[dict[int, np.ndarray]],
        *,
        sync: bool = True,
    ) -> list[dict[int, np.ndarray]]:
        """Exchange per-destination buffers between all ranks.

        Parameters
        ----------
        send:
            ``send[src]`` maps destination rank to a NumPy array (or a
            tuple of arrays) to deliver.  Missing destinations mean "no
            message".  Self-sends are delivered for free (local copy) and
            do not appear in the statistics.
        sync:
            End with a barrier (default) — the bulk-synchronous semantics
            used by every PIC phase.

        Returns
        -------
        list of dict
            ``recv[dst]`` maps source rank to the delivered payload.

        Notes
        -----
        Payloads are handed over by reference; after the call the
        receiver owns them and senders must not mutate them.
        Per-rank cost is ``tau * (msgs_sent + msgs_recv) + mu *
        (bytes_out + bytes_in)``, the paper's two-level model with both
        endpoints paying start-up.
        """
        require(len(send) == self.p, f"send must have one entry per rank ({self.p})")
        injector = self.fault_injector
        extra_seconds = None
        if injector is not None:
            injector.pre_exchange(self)
            extra_seconds = np.zeros(self.p)
        recv: list[dict[int, np.ndarray]] = [dict() for _ in range(self.p)]
        msgs_out = np.zeros(self.p, dtype=np.int64)
        msgs_in = np.zeros(self.p, dtype=np.int64)
        bytes_out = np.zeros(self.p, dtype=np.int64)
        bytes_in = np.zeros(self.p, dtype=np.int64)
        phase = self.current_phase
        for src, chunks in enumerate(send):
            for dst, payload in chunks.items():
                if not 0 <= dst < self.p:
                    raise InvalidRankError(
                        f"destination rank {dst} out of range [0, {self.p})"
                    )
                if dst == src:
                    recv[dst][src] = payload
                    continue  # local copy: free, not a message
                nbytes = payload_nbytes(payload)
                if injector is not None:
                    payload = injector.on_message(
                        self, phase, src, dst, payload, nbytes, extra_seconds
                    )
                recv[dst][src] = payload
                msgs_out[src] += 1
                bytes_out[src] += nbytes
                msgs_in[dst] += 1
                bytes_in[dst] += nbytes
                self.stats.record_message(phase, src, dst, nbytes)
        seconds = self.model.tau * (msgs_out + msgs_in) + self.model.mu * (bytes_out + bytes_in)
        if extra_seconds is not None:
            seconds = seconds + extra_seconds
        self._charge(seconds, kind="comm")
        if sync:
            self.barrier()
        return recv

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def allgather(self, values: list, *, nbytes_each: np.ndarray | None = None) -> list[list]:
        """Global concatenation: every rank receives ``[v_0, ..., v_{p-1}]``.

        ``nbytes_each`` overrides the payload-size estimate per rank.
        """
        require(len(values) == self.p, "values must have one entry per rank")
        if self.fault_injector is not None:
            self.fault_injector.pre_exchange(self)
        if nbytes_each is None:
            nbytes_each = np.array([payload_nbytes(v) for v in values], dtype=np.int64)
        else:
            nbytes_each = np.asarray(nbytes_each, dtype=np.int64)
        total = int(nbytes_each.sum())
        cost = self.model.collective_cost(self.p, total)
        if self.fault_injector is not None:
            cost += self.fault_injector.on_collective(self, self.current_phase, total)
        self.stats.record_collective(self.current_phase, nbytes_each)
        self._charge(np.full(self.p, cost), kind="comm")
        self.barrier()
        return [list(values) for _ in range(self.p)]

    def allreduce(self, arrays: list[np.ndarray], op: str = "sum") -> list[np.ndarray]:
        """Element-wise reduction across ranks; every rank gets the result.

        Supported ``op``: ``"sum"``, ``"max"``, ``"min"``.
        """
        require(len(arrays) == self.p, "arrays must have one entry per rank")
        if self.fault_injector is not None:
            self.fault_injector.pre_exchange(self)
        stack = [np.asarray(a) for a in arrays]
        shapes = {a.shape for a in stack}
        require(len(shapes) == 1, f"all ranks must contribute the same shape, got {shapes}")
        if op == "sum":
            result = np.sum(stack, axis=0)
        elif op == "max":
            result = np.max(stack, axis=0)
        elif op == "min":
            result = np.min(stack, axis=0)
        else:
            raise ValueError(f"unsupported reduction op {op!r}")
        nbytes = stack[0].nbytes
        cost = self.model.collective_cost(self.p, nbytes)
        if self.fault_injector is not None:
            cost += self.fault_injector.on_collective(self, self.current_phase, nbytes)
        self.stats.record_collective(self.current_phase, np.full(self.p, nbytes, dtype=np.int64))
        self._charge(np.full(self.p, cost), kind="comm")
        self.barrier()
        return [result.copy() for _ in range(self.p)]

    def allreduce_scalar(self, values: list[float], op: str = "sum") -> float:
        """Scalar reduction convenience wrapper around :meth:`allreduce`."""
        arrays = [np.asarray([v], dtype=float) for v in values]
        return float(self.allreduce(arrays, op=op)[0][0])

    # ------------------------------------------------------------------
    # state export / import (exact-resume checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the machine's mutable state.

        Covers the per-rank clocks, compute/comm splits, per-phase time
        tables, the :class:`CommStats` ledger, and the op counters —
        everything a checkpoint must round-trip for a resumed run to
        reproduce the uninterrupted one bit-for-bit.  Floats survive the
        JSON round trip exactly (``repr`` of a float64 is lossless).
        """
        return {
            "p": self.p,
            "clocks": self.clocks.tolist(),
            "compute_time": self.compute_time.tolist(),
            "comm_time": self.comm_time.tolist(),
            "phase_time": {name: t.tolist() for name, t in self.phase_time.items()},
            "stats": self.stats.state_dict(),
            "ops": self.ops.as_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore mutable state from a :meth:`state_dict` snapshot."""
        require(
            int(state["p"]) == self.p,
            f"machine state is for p={state['p']}, this machine has p={self.p}",
        )
        for name in ("clocks", "compute_time", "comm_time"):
            arr = np.asarray(state[name], dtype=float)
            require(arr.shape == (self.p,), f"{name} must have length p={self.p}")
            getattr(self, name)[:] = arr
        self.phase_time.clear()
        for name, values in state["phase_time"].items():
            arr = np.asarray(values, dtype=float)
            require(arr.shape == (self.p,), f"phase_time[{name!r}] must have length p={self.p}")
            self.phase_time[name] = arr
        self.stats.load_state(state["stats"])
        self.ops.load_dict(state["ops"])

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def phase_breakdown(self) -> dict[str, float]:
        """Max-over-ranks cumulative time charged under each phase label."""
        return {name: float(t.max()) for name, t in self.phase_time.items()}

    def __repr__(self) -> str:
        return f"VirtualMachine(p={self.p}, model={self.model.name!r}, t={self.elapsed():.3f}s)"


def payload_nbytes(payload) -> int:
    """Best-effort wire size of a message payload in bytes.

    NumPy arrays report ``nbytes``; tuples/lists of arrays sum their
    members; other objects are charged 8 bytes per ``len`` item or a
    64-byte flat rate.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (tuple, list)):
        if all(isinstance(x, np.ndarray) for x in payload):
            return int(sum(x.nbytes for x in payload))
        return 8 * len(payload)
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    try:
        return 8 * len(payload)
    except TypeError:
        return 64
