"""Deterministic fault injection for the virtual parallel machine.

A :class:`FaultPlan` schedules machine faults by ``(iteration, phase,
rank)`` — the same coordinates the paper's runtime measurements use — and
a :class:`FaultInjector` applies them at the communication choke points
every exchange already flows through (:meth:`VirtualMachine.alltoallv`,
:meth:`~VirtualMachine.allgather`, :meth:`~VirtualMachine.allreduce`,
and therefore ``exchange_by_destination[_pooled]`` and ``halo_sendrecv``,
which are built on them).

Fault kinds
-----------
``kill``
    Rank ``rank`` stops responding at iteration ``iteration`` (first
    matching communication).  Survivors block for ``detect_timeout``
    virtual seconds (charged under phase ``"recovery"``), then a
    :class:`~repro.util.errors.RankFailure` is raised.  The simulation
    driver catches it and recovers (shrink + restore, see
    ``Simulation.run``).
``drop``
    A matching message's first ``count`` transmissions are lost.  The
    transport retries with exponential backoff: each attempt charges the
    full message cost to both endpoints plus a backoff wait
    (``retry_timeout * 2**attempt``), and the retransmission is recorded
    in the communication statistics, so the recovery overhead is visible
    in ``vm.elapsed()`` and the per-phase comm stats.  More than
    ``max_retries`` consecutive losses raise
    :class:`~repro.util.errors.MessageLost`.  The payload is delivered
    intact — a drop never changes physics, only cost.
``duplicate``
    A matching message is transmitted twice; the receiver deduplicates
    by sequence number.  One extra message (cost + statistics) at both
    endpoints; payload delivered once.
``corrupt``
    A matching message arrives with a bad checksum; the receiver NACKs
    (an 8-byte control message) and the sender retransmits.  Extra cost
    and statistics for both; the delivered payload is intact.
``poison``
    An *undetectable* corruption (checksum collision): the delivered
    payload really is damaged (first float becomes NaN).  This is what
    the invariant guards (:mod:`repro.util.guards`) exist to catch —
    with guards off it would silently poison the physics.
``slowdown``
    Rank ``rank`` runs ``factor``x slower for ``count`` iterations
    starting at ``iteration`` (``count=0`` means "for the rest of the
    run") — every compute/communication charge to that rank is scaled.
    This is the per-rank cost drift the SAR policy reacts to.

With no plan installed (``vm.fault_injector is None``) every hook is a
single dormant branch: accounting is bit-identical to a build without
fault machinery.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.util.errors import FaultError, MessageLost, RankFailure
from repro.util.validation import require

__all__ = ["FaultEvent", "FaultPlan", "FaultInjector", "FAULT_KINDS"]

#: Supported fault kinds.
FAULT_KINDS = ("kill", "drop", "duplicate", "corrupt", "poison", "slowdown")

#: Kinds that target messages (matched by src/dst/phase/iteration).
_MESSAGE_KINDS = ("drop", "duplicate", "corrupt", "poison")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``rank`` names the victim of ``kill``/``slowdown``; message faults
    filter by ``src``/``dst`` instead (``None`` matches any rank).
    ``iteration=None`` matches every iteration (``kill`` fires
    immediately); ``phase=None`` matches every phase.  ``count`` is the
    number of consecutive lost transmissions for ``drop`` and the
    duration in iterations for ``slowdown`` (0 = until the run ends).
    """

    kind: str
    rank: int | None = None
    src: int | None = None
    dst: int | None = None
    iteration: int | None = None
    phase: str | None = None
    count: int = 1
    factor: float = 2.0

    def __post_init__(self) -> None:
        require(self.kind in FAULT_KINDS, f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.kind in ("kill", "slowdown"):
            require(self.rank is not None and self.rank >= 0,
                    f"{self.kind} event needs a victim rank >= 0")
        if self.kind == "slowdown":
            require(self.factor >= 1.0, f"slowdown factor must be >= 1, got {self.factor}")
            require(self.count >= 0, "slowdown count must be >= 0")
        if self.kind == "drop":
            require(self.count >= 1, "drop count must be >= 1")

    # ------------------------------------------------------------------
    def matches_message(self, iteration: int, phase: str, src: int, dst: int) -> bool:
        """Does this (message-kind) event hit the given message?"""
        return (
            (self.iteration is None or self.iteration == iteration)
            and (self.phase is None or self.phase == phase)
            and (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
        )

    def slowdown_active(self, iteration: int) -> bool:
        """Is this slowdown event active at ``iteration``?"""
        start = 0 if self.iteration is None else self.iteration
        if iteration < start:
            return False
        return self.count == 0 or iteration < start + self.count

    def to_dict(self) -> dict:
        """JSON-serializable form (defaults omitted)."""
        out: dict = {"kind": self.kind}
        for name in ("rank", "src", "dst", "iteration", "phase"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.count != 1:
            out["count"] = self.count
        if self.kind == "slowdown":
            out["factor"] = self.factor
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Inverse of :meth:`to_dict`; unknown keys raise ``ValueError``."""
        known = {"kind", "rank", "src", "dst", "iteration", "phase", "count", "factor"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault event keys: {sorted(unknown)}")
        if "kind" not in data:
            raise ValueError("fault event needs a 'kind'")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults plus the transport's recovery
    parameters (all virtual seconds).

    ``retry_timeout`` is the base backoff wait before a retransmission
    (doubled per consecutive loss); ``detect_timeout`` is how long
    survivors block before declaring a silent rank dead;
    ``max_retries`` bounds consecutive retransmissions of one message.
    """

    events: tuple[FaultEvent, ...] = ()
    retry_timeout: float = 2.0e-3
    detect_timeout: float = 5.0e-2
    max_retries: int = 3

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        require(self.retry_timeout >= 0, "retry_timeout must be >= 0")
        require(self.detect_timeout >= 0, "detect_timeout must be >= 0")
        require(self.max_retries >= 0, "max_retries must be >= 0")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "retry_timeout": self.retry_timeout,
            "detect_timeout": self.detect_timeout,
            "max_retries": self.max_retries,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Build a plan from :meth:`to_dict` output / a faults.json dict."""
        known = {"retry_timeout", "detect_timeout", "max_retries", "events"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault plan keys: {sorted(unknown)}")
        events = tuple(FaultEvent.from_dict(e) for e in data.get("events", ()))
        return cls(
            events=events,
            retry_timeout=float(data.get("retry_timeout", 2.0e-3)),
            detect_timeout=float(data.get("detect_timeout", 5.0e-2)),
            max_retries=int(data.get("max_retries", 3)),
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file (the CLI's ``--fault-plan``)."""
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan {path} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError(f"fault plan {path} must contain a JSON object")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    def survivor_plan(self, dead_rank: int) -> "FaultPlan":
        """The plan as seen by the shrunk machine after ``dead_rank`` died.

        The fired kill event is removed; every remaining rank reference
        above ``dead_rank`` shifts down by one (survivors are renumbered
        compactly); events that only targeted the dead rank are dropped.
        """

        def remap(r: int | None) -> int | None:
            if r is None:
                return None
            return r - 1 if r > dead_rank else r

        events = []
        for ev in self.events:
            if ev.kind in ("kill", "slowdown") and ev.rank == dead_rank:
                continue
            if ev.kind in _MESSAGE_KINDS and (ev.src == dead_rank or ev.dst == dead_rank):
                continue
            events.append(
                FaultEvent(
                    kind=ev.kind,
                    rank=remap(ev.rank),
                    src=remap(ev.src),
                    dst=remap(ev.dst),
                    iteration=ev.iteration,
                    phase=ev.phase,
                    count=ev.count,
                    factor=ev.factor,
                )
            )
        return FaultPlan(
            events=tuple(events),
            retry_timeout=self.retry_timeout,
            detect_timeout=self.detect_timeout,
            max_retries=self.max_retries,
        )


def _poison_payload(payload):
    """Damage a payload copy the way an undetected bit flip would: the
    first float of every float array becomes NaN.  Integer arrays (node
    ids, particle ids) are left alone so the damage is to *values*, not
    to addressing."""
    if isinstance(payload, np.ndarray):
        if payload.dtype.kind == "f" and payload.size:
            out = payload.copy()
            out.reshape(-1)[0] = np.nan
            return out
        return payload
    if isinstance(payload, tuple):
        return tuple(_poison_payload(x) for x in payload)
    if isinstance(payload, list):
        return [_poison_payload(x) for x in payload]
    return payload


class FaultInjector:
    """Applies a :class:`FaultPlan` on one :class:`VirtualMachine`.

    The simulation driver advances :attr:`iteration` once per step; the
    machine's communication primitives call the ``pre_exchange`` /
    ``on_message`` / ``on_collective`` / ``scale_charge`` hooks.  The
    injector is deliberately stateless apart from which kills have fired
    — fault schedules are deterministic functions of (iteration, phase,
    src, dst).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.iteration = 0
        #: ranks declared dead (kills that fired)
        self.dead: set[int] = set()
        self._kills = [e for e in plan.events if e.kind == "kill"]
        self._slowdowns = [e for e in plan.events if e.kind == "slowdown"]
        self._message_events = [e for e in plan.events if e.kind in _MESSAGE_KINDS]

    # ------------------------------------------------------------------
    def set_iteration(self, iteration: int) -> None:
        """Advance the fault clock (called once per simulation step)."""
        self.iteration = iteration

    @property
    def active(self) -> bool:
        """Whether any event can still fire (cheap liveness probe)."""
        return bool(self._kills or self._slowdowns or self._message_events)

    # ------------------------------------------------------------------
    # hooks called by the virtual machine
    # ------------------------------------------------------------------
    def pre_exchange(self, vm) -> None:
        """Fire due kills; raise :class:`RankFailure` if a peer is dead.

        Survivors block ``detect_timeout`` virtual seconds (charged to
        every rank under phase ``"recovery"``) before the failure is
        declared — that is the price of detection, and it stays on the
        clock through recovery.
        """
        it = self.iteration
        phase = vm.current_phase
        fired = [
            e
            for e in self._kills
            if (e.iteration is None or it >= e.iteration)
            and (e.phase is None or e.phase == phase)
            and e.rank not in self.dead
        ]
        for e in fired:
            if e.rank >= vm.p:
                raise FaultError(
                    f"kill event targets rank {e.rank} but the machine has p={vm.p}"
                )
            self.dead.add(e.rank)
        if self.dead:
            with vm.phase("recovery"):
                vm.charge_comm_seconds(self.plan.detect_timeout)
            raise RankFailure(min(self.dead), it, phase)

    def on_message(self, vm, phase: str, src: int, dst: int, payload, nbytes: int,
                   extra_seconds: np.ndarray):
        """Apply message faults to one (src, dst) message.

        Accumulates per-rank recovery cost into ``extra_seconds``,
        records retransmissions in the comm statistics, and returns the
        payload actually delivered (a damaged copy for ``poison``).
        """
        it = self.iteration
        model = vm.model
        for ev in self._message_events:
            if not ev.matches_message(it, phase, src, dst):
                continue
            if ev.kind == "drop":
                attempts = ev.count
                if attempts > self.plan.max_retries:
                    raise MessageLost(src, dst, attempts + 1)
                wait = sum(self.plan.retry_timeout * 2.0**i for i in range(attempts))
                cost = wait + attempts * model.message_cost(nbytes)
                extra_seconds[src] += cost
                extra_seconds[dst] += cost
                for _ in range(attempts):
                    vm.stats.record_message(phase, src, dst, nbytes)
            elif ev.kind == "duplicate":
                cost = model.message_cost(nbytes)
                extra_seconds[src] += cost
                extra_seconds[dst] += cost
                vm.stats.record_message(phase, src, dst, nbytes)
            elif ev.kind == "corrupt":
                cost = model.message_cost(8) + model.message_cost(nbytes)
                extra_seconds[src] += cost
                extra_seconds[dst] += cost
                vm.stats.record_message(phase, dst, src, 8)  # the NACK
                vm.stats.record_message(phase, src, dst, nbytes)  # retransmit
            elif ev.kind == "poison":
                payload = _poison_payload(payload)
        return payload

    def on_collective(self, vm, phase: str, nbytes_total: int) -> float:
        """Extra per-rank cost of transport faults during a collective.

        Each matching drop/duplicate/corrupt event costs one extra tree
        round (the stage is repeated); poison is not modeled for
        collectives (reductions re-verify on the host).
        """
        it = self.iteration
        extra = 0.0
        for ev in self._message_events:
            if ev.kind == "poison":
                continue
            if (ev.iteration is None or ev.iteration == it) and (
                ev.phase is None or ev.phase == phase
            ):
                extra += vm.model.collective_cost(vm.p, nbytes_total)
        return extra

    def scale_charge(self, seconds: np.ndarray, kind: str, phase: str) -> np.ndarray:
        """Apply active per-rank slowdowns to a charge vector."""
        it = self.iteration
        scaled = None
        for ev in self._slowdowns:
            if not ev.slowdown_active(it):
                continue
            if ev.phase is not None and ev.phase != phase:
                continue
            if ev.rank >= seconds.shape[0]:
                continue
            if scaled is None:
                scaled = np.array(seconds, dtype=float)
            scaled[ev.rank] *= ev.factor
        return seconds if scaled is None else scaled

    def __repr__(self) -> str:
        return (
            f"FaultInjector(events={len(self.plan.events)}, "
            f"iteration={self.iteration}, dead={sorted(self.dead)})"
        )
