"""Two-level machine cost model (paper §4).

A unit computation costs ``delta`` seconds; a message costs ``tau``
start-up plus ``mu`` seconds per byte, independent of distance — the
paper states these assumptions "closely model the behavior of the CM-5".

Computation is charged per *category* (scatter / gather / field / push /
sort / index ...) so that experiments can separate "computation time"
from "overhead" the way the paper's Figures 21–22 do.  Each category has
a unit cost expressed as a multiple of ``delta``.  Charging a category
the model has no weight for is almost always a caller typo that would
silently distort every derived figure, so it warns once per category by
default and raises under strict accounting (``guards="strict"``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.util import require_positive

__all__ = ["MachineModel"]

#: Default operation weights (units of ``delta`` per counted operation).
#: The counted operations follow the paper's analysis: ``scatter`` and
#: ``gather`` are per particle-vertex (4 per particle), ``field`` per
#: grid point per solver sweep, ``push`` per particle, ``sort`` per
#: particle per classification/merge pass, ``index`` per particle.
DEFAULT_OP_WEIGHTS: Mapping[str, float] = {
    "scatter": 30.0,  # find vertex, interpolate weight, accumulate
    "gather": 35.0,  # interpolate E and B contributions
    "field": 40.0,  # 5-point curl/update stencil, E and B
    "push": 80.0,  # relativistic Boris rotation + position update
    "sort": 8.0,  # per-element classification / merge work
    "index": 12.0,  # cell lookup + Hilbert key bits
    "table": 2.0,  # ghost-table insert/probe/merge steps
}


@dataclass(frozen=True)
class MachineModel:
    """Cost constants of the simulated machine.

    Parameters
    ----------
    delta:
        Seconds per unit operation (one "flop-ish" step).
    tau:
        Message start-up latency in seconds, charged per message at both
        the sender and the receiver.
    mu:
        Seconds per transferred byte (inverse bandwidth).
    op_weights:
        Units of ``delta`` per counted operation for each category.
    name:
        Human-readable preset name for reports.
    """

    delta: float = 2.0e-7
    tau: float = 86.0e-6
    mu: float = 0.125e-6
    op_weights: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_OP_WEIGHTS))
    name: str = "custom"

    def __post_init__(self) -> None:
        require_positive(self.delta, "delta")
        require_positive(self.tau, "tau", strict=False)
        require_positive(self.mu, "mu", strict=False)
        for key, weight in self.op_weights.items():
            require_positive(weight, f"op_weights[{key!r}]")
        # Non-field mutable cache on a frozen dataclass: categories this
        # instance has already warned about, so a hot loop charging a
        # misspelled category does not flood stderr.
        object.__setattr__(self, "_warned_categories", set())

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def cm5(cls) -> "MachineModel":
        """CM-5 without vector units: ~5 Mop/s nodes, 86 us start-up, ~8 MB/s.

        These constants put 200-iteration runs of the paper's workloads in
        the same tens-to-hundreds-of-seconds range as its Table 2.
        """
        return cls(delta=2.0e-7, tau=86.0e-6, mu=0.125e-6, name="cm5")

    @classmethod
    def modern(cls) -> "MachineModel":
        """A contemporary commodity cluster: ~1 Gop/s effective, 2 us, 10 GB/s.

        The compute/communication ratio is much larger than the CM-5's,
        which the paper predicts lowers efficiency at fixed granularity —
        useful for the scaling discussion in EXPERIMENTS.md.
        """
        return cls(delta=1.0e-9, tau=2.0e-6, mu=1.0e-10, name="modern")

    @classmethod
    def zero_compute(cls) -> "MachineModel":
        """Communication-only model: isolates message traffic in tests."""
        weights = {k: 1e-30 for k in DEFAULT_OP_WEIGHTS}
        return cls(delta=1e-30, tau=86.0e-6, mu=0.125e-6, op_weights=weights, name="zero-compute")

    @classmethod
    def by_name(cls, name: str) -> "MachineModel":
        """Return the preset called ``name`` (``cm5`` | ``modern`` | ``zero-compute``)."""
        presets = {"cm5": cls.cm5, "modern": cls.modern, "zero-compute": cls.zero_compute}
        if name not in presets:
            known = ", ".join(sorted(presets))
            raise ValueError(f"unknown machine model {name!r}; known presets: {known}")
        return presets[name]()

    # ------------------------------------------------------------------
    # serialization (configs / checkpoints)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form (full constants, not just the name)."""
        return {
            "name": self.name,
            "delta": self.delta,
            "tau": self.tau,
            "mu": self.mu,
            "op_weights": dict(self.op_weights),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineModel":
        """Inverse of :meth:`to_dict`."""
        return cls(
            delta=float(data["delta"]),
            tau=float(data["tau"]),
            mu=float(data["mu"]),
            op_weights={k: float(v) for k, v in data["op_weights"].items()},
            name=str(data["name"]),
        )

    # ------------------------------------------------------------------
    # cost functions
    # ------------------------------------------------------------------
    def compute_cost(self, category: str, count: float, *, strict: bool = False) -> float:
        """Seconds of computation for ``count`` operations of ``category``.

        A category outside :attr:`op_weights` is charged one ``delta``
        per operation, but never silently: it warns once per category
        (and instance), or raises ``ValueError`` when ``strict`` — the
        way :class:`~repro.pic.simulation.Simulation` runs it under
        ``guards="strict"``.  A typo'd category otherwise deflates the
        charge by 1–2 orders of magnitude and skews every derived
        compute/overhead split.
        """
        if count < 0:
            raise ValueError(f"operation count must be >= 0, got {count}")
        weight = self.op_weights.get(category)
        if weight is None:
            known = ", ".join(sorted(self.op_weights))
            if strict:
                raise ValueError(
                    f"unknown op category {category!r}; known: {known}"
                )
            if category not in self._warned_categories:
                self._warned_categories.add(category)
                warnings.warn(
                    f"charging unknown op category {category!r} at weight 1.0 "
                    f"(known: {known}); pass an op_weights entry or fix the "
                    f"category name",
                    stacklevel=2,
                )
            weight = 1.0
        return count * weight * self.delta

    def message_cost(self, nbytes: float, nmessages: int = 1) -> float:
        """Seconds to send/receive ``nmessages`` totalling ``nbytes`` bytes."""
        if nbytes < 0 or nmessages < 0:
            raise ValueError("nbytes and nmessages must be >= 0")
        return nmessages * self.tau + nbytes * self.mu

    def collective_cost(self, p: int, nbytes_total: float) -> float:
        """Seconds for a tree-based collective over ``p`` ranks moving
        ``nbytes_total`` bytes end-to-end (e.g. allreduce / concatenate).

        The CM-5 had hardware support for global operations; a
        ``ceil(log2 p)``-depth tree is a faithful, slightly conservative
        stand-in.
        """
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        if p == 1:
            return 0.0
        depth = int(np.ceil(np.log2(p)))
        return depth * (self.tau + nbytes_total * self.mu)
