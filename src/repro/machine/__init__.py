"""Virtual coarse-grained distributed-memory machine (the CM-5 substitute).

The paper evaluates on a 32–128 node TMC CM-5 and models it (its §4) with
a *two-level* cost model: unit computation ``delta``, message start-up
``tau``, and inverse bandwidth ``mu``, independent of distance and
congestion.  This package provides exactly that machine as a simulation
substrate:

* :class:`MachineModel` — the (delta, tau, mu) constants plus per-category
  unit-operation costs; CM-5 and modern-cluster presets.
* :class:`VirtualMachine` — ``p`` virtual ranks with per-rank virtual
  clocks.  SPMD phase code runs rank-by-rank on real NumPy data;
  communication physically moves buffers between ranks while the clocks
  advance according to the cost model.
* :class:`CommStats` — per-phase, per-rank message/byte accounting, the
  source of the paper's Figures 18/19 ("max data / max messages sent or
  received by any processor").
* :class:`BlockTopology` — 2-D processor grids and neighbour maps for
  halo exchanges.
* :class:`FaultPlan` / :class:`FaultInjector` — deterministic fault
  injection (rank kills, message drops/duplications/corruptions,
  per-rank slowdowns) applied at the machine's communication choke
  points, with retry/timeout/backoff charged to the virtual clocks.

The machine is *bulk-synchronous*: each PIC phase ends in a barrier, so
per-iteration virtual time is the sum over phases of the slowest rank's
(compute + communication) cost — the same structure as the paper's
complexity analysis.
"""

from repro.machine.faults import FaultEvent, FaultInjector, FaultPlan
from repro.machine.model import MachineModel
from repro.machine.stats import CommStats, PhaseComm
from repro.machine.topology import BlockTopology, best_process_grid
from repro.machine.trace import PhaseTrace
from repro.machine.virtual import VirtualMachine

__all__ = [
    "MachineModel",
    "VirtualMachine",
    "CommStats",
    "PhaseComm",
    "BlockTopology",
    "best_process_grid",
    "PhaseTrace",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
]
