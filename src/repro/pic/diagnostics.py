"""Physics diagnostics: conservation tracking across a run.

:class:`DiagnosticsRecorder` samples conserved (or nearly conserved)
quantities — total charge, field/kinetic/total energy, momentum, the
Gauss-law residual — every ``every`` iterations, and exposes them as
arrays for analysis and regression tests.  Works with both the
sequential and parallel steppers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.fields import FieldState
from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray
from repro.pic.maxwell import MaxwellSolver
from repro.util import require

__all__ = ["DiagnosticsRecorder", "DiagnosticsSample"]


@dataclass
class DiagnosticsSample:
    """One sampled set of conservation quantities."""

    iteration: int
    field_energy: float
    kinetic_energy: float
    total_charge: float
    momentum: np.ndarray  #: (3,) total particle momentum
    gauss_residual: float  #: max |div E - (rho - <rho>)|

    @property
    def total_energy(self) -> float:
        """Field plus kinetic energy."""
        return self.field_energy + self.kinetic_energy


class DiagnosticsRecorder:
    """Samples conservation diagnostics from a PIC state.

    Parameters
    ----------
    grid:
        Mesh geometry.
    every:
        Sample every ``every`` calls to :meth:`record` (default 1).
    """

    def __init__(self, grid: Grid2D, *, every: int = 1) -> None:
        require(every >= 1, "every must be >= 1")
        self.grid = grid
        self.every = every
        self.samples: list[DiagnosticsSample] = []
        self._solver = MaxwellSolver(grid)
        self._calls = 0

    def record(self, iteration: int, fields: FieldState, particles: ParticleArray) -> None:
        """Sample the state if the cadence says so."""
        self._calls += 1
        if (self._calls - 1) % self.every:
            return
        self.samples.append(
            DiagnosticsSample(
                iteration=iteration,
                field_energy=fields.field_energy(self.grid),
                kinetic_energy=particles.kinetic_energy(),
                total_charge=fields.total_charge(self.grid),
                momentum=particles.momentum(),
                gauss_residual=float(np.abs(self._solver.gauss_residual(fields)).max()),
            )
        )

    # ------------------------------------------------------------------
    def series(self, name: str) -> np.ndarray:
        """Return the sampled series for a quantity by attribute name."""
        require(bool(self.samples), "no samples recorded")
        if name == "total_energy":
            return np.array([s.total_energy for s in self.samples])
        if name == "momentum":
            return np.stack([s.momentum for s in self.samples])
        if not hasattr(self.samples[0], name):
            raise KeyError(f"unknown diagnostic {name!r}")
        return np.array([getattr(s, name) for s in self.samples])

    def energy_drift(self) -> float:
        """Relative change of total energy from first to last sample."""
        total = self.series("total_energy")
        base = max(abs(total[0]), 1e-300)
        return float((total[-1] - total[0]) / base)

    def charge_drift(self) -> float:
        """Max absolute deviation of total charge from its initial value."""
        charge = self.series("total_charge")
        return float(np.abs(charge - charge[0]).max())

    def summary(self) -> dict[str, float]:
        """Scalar summary suitable for logging or assertions."""
        return {
            "samples": float(len(self.samples)),
            "energy_drift": self.energy_drift(),
            "charge_drift": self.charge_drift(),
            "max_gauss_residual": float(self.series("gauss_residual").max()),
        }
