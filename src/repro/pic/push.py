"""Push phase: relativistic Boris particle pusher.

The standard energy-conserving Boris scheme (half electric kick,
magnetic rotation, half electric kick) in normalized units (c = 1),
advancing momenta ``u = gamma * v`` and then positions.  The paper's
push phase has no interprocessor communication under the direct
Lagrangian method — this kernel is pure per-particle computation.

Because every update is per-particle independent and in place,
:func:`boris_push` is segment-oblivious: the flat-rank engine calls it
once over a pooled :class:`~repro.particles.arrays.ParticlePool` array
and the per-rank views advance bit-identically to ``p`` per-rank calls.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray
from repro.util import require

__all__ = ["boris_push"]


def boris_push(
    grid: Grid2D,
    particles: ParticleArray,
    e: np.ndarray,
    b: np.ndarray,
    dt: float,
) -> None:
    """Advance particle momenta and positions in place by one step.

    Parameters
    ----------
    grid:
        Domain geometry (positions are wrapped periodically).
    particles:
        Particle set; ``ux, uy, uz, x, y`` are updated in place.
    e, b:
        ``(3, n)`` interpolated fields at the particles.
    dt:
        Time step.
    """
    require(dt > 0, f"dt must be > 0, got {dt}")
    e = np.asarray(e, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = particles.n
    require(e.shape == (3, n) and b.shape == (3, n), "e and b must be (3, n)")
    if n and particles.m.min() <= 0:
        raise ValueError("boris_push requires strictly positive particle masses")

    qmdt2 = 0.5 * dt * particles.q / particles.m  # (n,)

    # half electric acceleration
    umx = particles.ux + qmdt2 * e[0]
    umy = particles.uy + qmdt2 * e[1]
    umz = particles.uz + qmdt2 * e[2]

    # magnetic rotation
    gamma_m = np.sqrt(1.0 + umx**2 + umy**2 + umz**2)
    tx = qmdt2 * b[0] / gamma_m
    ty = qmdt2 * b[1] / gamma_m
    tz = qmdt2 * b[2] / gamma_m
    t2 = tx**2 + ty**2 + tz**2
    sx = 2.0 * tx / (1.0 + t2)
    sy = 2.0 * ty / (1.0 + t2)
    sz = 2.0 * tz / (1.0 + t2)
    # u' = u- + u- x t
    upx = umx + (umy * tz - umz * ty)
    upy = umy + (umz * tx - umx * tz)
    upz = umz + (umx * ty - umy * tx)
    # u+ = u- + u' x s
    uplusx = umx + (upy * sz - upz * sy)
    uplusy = umy + (upz * sx - upx * sz)
    uplusz = umz + (upx * sy - upy * sx)

    # second half electric acceleration
    particles.ux[:] = uplusx + qmdt2 * e[0]
    particles.uy[:] = uplusy + qmdt2 * e[1]
    particles.uz[:] = uplusz + qmdt2 * e[2]

    # position update with the new momentum
    gamma = particles.gamma()
    particles.x[:], particles.y[:] = grid.wrap_positions(
        particles.x + dt * particles.ux / gamma,
        particles.y + dt * particles.uy / gamma,
    )
