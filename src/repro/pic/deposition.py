"""Scatter phase: cloud-in-cell charge and current deposition.

Each particle contributes to the 4 vertex nodes of its cell with
bilinear weights (the paper's Figure 3 ``Scatter()``), vectorized with
``numpy.bincount`` over flattened (node, weight*value) entry lists.

The entry-list form (:func:`deposition_entries`) is shared with the
parallel scatter, which must split entries into on-rank accumulation and
off-rank *ghost* contributions before communicating.

The flat-rank engine runs deposition once over *all* ranks' pooled
particles: :func:`segmented_entry_ranks` labels each flattened entry
with its depositing rank, and :func:`pooled_duplicate_removal` performs
every rank's ghost-table duplicate removal in a single pass by keying
entries with rank-offset node ids (``node + rank * nnodes``) and summing
duplicates with one ``unique``/``bincount`` — per-rank results come back
as contiguous segments of the sorted unique keys.

Association contract: both engines (and the multicore backend's
:mod:`repro.parallel_exec.kernels`) accumulate "mine" entries into a
*per-depositing-rank* partial row first and add rows in ascending rank
order, so every float addition happens in the same order everywhere —
deposition results are bit-identical across engines and worker counts,
not merely close (DESIGN.md §5.5).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray

__all__ = [
    "deposition_entries",
    "accumulate_entries",
    "deposit_charge_current",
    "segmented_entry_ranks",
    "pooled_duplicate_removal",
]

#: Deposited source channels, in the order of the values matrix rows.
CHANNELS = ("rho", "jx", "jy", "jz")


def deposition_entries(
    grid: Grid2D,
    particles: ParticleArray,
    vertices: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute per-(particle, vertex) deposition entries.

    Parameters
    ----------
    vertices:
        Optional precomputed ``(nodes, weights)`` from
        :meth:`~repro.mesh.grid.Grid2D.cic_vertices_weights` for these
        particles' current positions — the parallel stepper shares one
        CIC evaluation between its scatter and gather phases.

    Returns
    -------
    nodes:
        int64 array of shape ``(n, 4)`` — target node ids.
    values:
        float64 array of shape ``(4, n, 4)`` — deposited amounts per
        channel (rho, jx, jy, jz) per particle per vertex, i.e.
        ``weight_vertex * w * q * (1, vx, vy, vz)``.
    """
    if vertices is None:
        nodes, weights = grid.cic_vertices_weights(particles.x, particles.y)
    else:
        nodes, weights = vertices
    inv_gamma = 1.0 / particles.gamma()
    charge = particles.w * particles.q
    per_particle = np.stack(
        [
            charge,
            charge * particles.ux * inv_gamma,
            charge * particles.uy * inv_gamma,
            charge * particles.uz * inv_gamma,
        ]
    )  # (4 channels, n)
    values = per_particle[:, :, None] * weights[None, :, :]  # (4, n, 4)
    return nodes, values


def accumulate_entries(
    nnodes: int, nodes: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Sum entry lists onto the node grid.

    Parameters
    ----------
    nnodes:
        Total node count.
    nodes:
        int64 target node ids, any shape.
    values:
        float64 amounts with shape ``(4,) + nodes.shape``.

    Returns
    -------
    numpy.ndarray
        ``(4, nnodes)`` accumulated channels.
    """
    flat_nodes = np.asarray(nodes, dtype=np.int64).ravel()
    out = np.empty((len(CHANNELS), nnodes))
    for c in range(len(CHANNELS)):
        out[c] = np.bincount(flat_nodes, weights=values[c].ravel(), minlength=nnodes)
    return out


def segmented_entry_ranks(counts: np.ndarray) -> np.ndarray:
    """Depositing rank of each flattened CIC entry of a pooled array.

    A pooled particle array is rank-segment ordered, and each particle
    contributes 4 entries in ``nodes.ravel()`` order, so rank ``r``'s
    entries occupy the contiguous slice ``[4 * offsets[r], 4 *
    offsets[r + 1])``.

    Parameters
    ----------
    counts:
        Per-rank particle counts (length ``p``).

    Returns
    -------
    numpy.ndarray
        int64 rank label per entry, length ``4 * counts.sum()``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    return np.repeat(np.arange(counts.shape[0], dtype=np.int64), 4 * counts)


def pooled_duplicate_removal(
    nnodes: int,
    p: int,
    entry_ranks: np.ndarray,
    nodes: np.ndarray,
    values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All ranks' ghost duplicate removal in one vectorized pass.

    Keys every (rank, node) pair as ``rank * nnodes + node``, finds the
    sorted unique keys, and sums each channel's duplicate contributions
    with one ``bincount`` over the inverse map.  Because entries arrive
    in pool (rank-segment) order, the per-key sums accumulate in exactly
    the order each rank's own ghost table would have used — the summed
    values are bit-identical to per-rank ``accumulate`` + ``flush``.

    Parameters
    ----------
    nnodes:
        Global node count (the rank-offset stride).
    p:
        Number of ranks.
    entry_ranks, nodes:
        int64 depositing rank and target node per entry (flat, aligned).
    values:
        ``(nchannels, nentries)`` deposited amounts.

    Returns
    -------
    (uniq_nodes, uniq_owner_segments, summed, seg):
        ``uniq_nodes`` — node ids of the unique (rank, node) pairs,
        sorted by rank then node; ``uniq_ranks`` — depositing rank per
        unique pair; ``summed`` — ``(nchannels, u)`` coalesced values;
        ``seg`` — length ``p + 1`` boundaries such that rank ``r``'s
        unique entries are ``[seg[r], seg[r + 1])``.
    """
    combined = entry_ranks * np.int64(nnodes) + nodes
    uniq, inverse = np.unique(combined, return_inverse=True)
    nchannels = values.shape[0]
    summed = np.empty((nchannels, uniq.size))
    for c in range(nchannels):
        summed[c] = np.bincount(inverse, weights=values[c], minlength=uniq.size)
    uniq_ranks, uniq_nodes = np.divmod(uniq, np.int64(nnodes))
    seg = np.searchsorted(uniq, np.arange(p + 1, dtype=np.int64) * np.int64(nnodes))
    return uniq_nodes, uniq_ranks, summed, seg


def deposit_charge_current(
    grid: Grid2D, particles: ParticleArray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Full sequential scatter: deposit rho, jx, jy, jz onto the grid.

    Returns the four ``(ny, nx)`` arrays.  Deposited densities are per
    cell area (divided by ``dx * dy``) so a mean-density-1 plasma gives
    ``rho ~ -1``.
    """
    nodes, values = deposition_entries(grid, particles)
    acc = accumulate_entries(grid.nnodes, nodes, values)
    scale = 1.0 / (grid.dx * grid.dy)
    shaped = (acc * scale).reshape(len(CHANNELS), grid.ny, grid.nx)
    return shaped[0], shaped[1], shaped[2], shaped[3]
