"""Gather phase: cloud-in-cell interpolation of E and B to particles.

The inverse of deposition (the paper's Figure 3 ``Gather()``): each
particle sums bilinear-weighted contributions from its 4 vertex nodes.
The node-value lookup is factored out (:func:`gather_from_node_values`)
so the parallel gather can substitute a local-plus-ghost value table for
the global arrays.

:func:`gather_from_node_values` is segment-oblivious: the reduction is
independent per particle, so the flat-rank engine calls it once over the
whole pooled particle array and the results are bit-identical to ``p``
per-rank calls on the segments (the per-particle 4-vertex sum order is
unchanged by pooling).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.fields import FieldState
from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray

__all__ = ["gather_from_node_values", "interpolate_fields"]


def gather_from_node_values(
    node_values: np.ndarray, nodes: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Interpolate per-node component values to particles.

    Parameters
    ----------
    node_values:
        ``(ncomp, nnodes)`` flat node data (e.g. 6 components of E, B).
    nodes, weights:
        ``(n, 4)`` CIC vertices and weights from
        :meth:`repro.mesh.grid.Grid2D.cic_vertices_weights`.

    Returns
    -------
    numpy.ndarray
        ``(ncomp, n)`` interpolated values at particles.
    """
    gathered = node_values[:, nodes]  # (ncomp, n, 4)
    return np.einsum("cnv,nv->cn", gathered, weights)


def interpolate_fields(
    grid: Grid2D, fields: FieldState, particles: ParticleArray
) -> tuple[np.ndarray, np.ndarray]:
    """Sequential gather: E and B at each particle position.

    Returns
    -------
    (e, b):
        Arrays of shape ``(3, n)``: electric and magnetic field vectors
        at the particles.
    """
    nodes, weights = grid.cic_vertices_weights(particles.x, particles.y)
    node_values = np.stack(
        [
            fields.ex.ravel(),
            fields.ey.ravel(),
            fields.ez.ravel(),
            fields.bx.ravel(),
            fields.by.ravel(),
            fields.bz.ravel(),
        ]
    )
    both = gather_from_node_values(node_values, nodes, weights)
    return both[:3], both[3:]
