r"""Field-solve phase: finite-difference Maxwell solver.

A leapfrog FDTD update on the collocated periodic node grid with
centred differences — each node reads only its four stencil neighbours,
exactly the access pattern the paper's field-solve analysis assumes
("each grid point needs data from its four neighboring grid points").

Normalized units (``c = eps0 = mu0 = 1``):

.. math::

    B^{n+1/2} = B^{n} - (dt/2)\,\nabla\times E^{n} \\
    E^{n+1}   = E^{n} + dt\,(\nabla\times B^{n+1/2} - J^{n+1/2}) \\
    B^{n+1}   = B^{n+1/2} - (dt/2)\,\nabla\times E^{n+1}

The deposited current is mean-subtracted per component, the periodic
analogue of a neutralizing background: without it a net drift current
would secularly grow a uniform E mode.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.fields import FieldState
from repro.mesh.grid import Grid2D
from repro.util import require, require_positive

__all__ = ["MaxwellSolver", "curl"]


def _ddx(a: np.ndarray, dx: float) -> np.ndarray:
    """Centred x-derivative on the periodic (ny, nx) grid."""
    return (np.roll(a, -1, axis=1) - np.roll(a, 1, axis=1)) / (2.0 * dx)


def _ddy(a: np.ndarray, dy: float) -> np.ndarray:
    """Centred y-derivative on the periodic (ny, nx) grid."""
    return (np.roll(a, -1, axis=0) - np.roll(a, 1, axis=0)) / (2.0 * dy)


def curl(
    fx: np.ndarray, fy: np.ndarray, fz: np.ndarray, dx: float, dy: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Curl of a 2-D field (d/dz = 0), centred differences, periodic."""
    cx = _ddy(fz, dy)
    cy = -_ddx(fz, dx)
    cz = _ddx(fy, dx) - _ddy(fx, dy)
    return cx, cy, cz


class MaxwellSolver:
    """Leapfrog FDTD Maxwell integrator on a :class:`Grid2D`.

    Parameters
    ----------
    grid:
        Domain geometry; sets the CFL limit
        ``dt < min(dx, dy) / sqrt(2)``.
    subtract_mean_current:
        Remove the domain-mean of each J component before the E update
        (neutralizing-background convention; default True).
    marder_passes:
        Number of Marder divergence-cleaning passes per step (default 1).
        Plain CIC current deposition does not satisfy the discrete
        continuity equation, so ``div E - rho`` drifts and eventually
        drives an unphysical instability; the Marder correction
        ``E += d * dt * grad(div E - rho)`` diffuses the error away using
        only nearest-neighbour data — the same local communication
        pattern as the rest of the field solve.  Set 0 to disable.
    """

    #: Unit-operation count per node per solve, for the cost model: the
    #: two curls + three field updates touch each node a fixed number of
    #: times (matches the paper's ``(m/p) * T_f_comp`` form).
    OPS_PER_NODE = 1.0

    def __init__(
        self,
        grid: Grid2D,
        *,
        subtract_mean_current: bool = True,
        marder_passes: int = 1,
    ) -> None:
        require(marder_passes >= 0, f"marder_passes must be >= 0, got {marder_passes}")
        self.grid = grid
        self.subtract_mean_current = subtract_mean_current
        self.marder_passes = marder_passes

    def cfl_limit(self) -> float:
        """Largest stable time step for the centred scheme."""
        return min(self.grid.dx, self.grid.dy) / np.sqrt(2.0)

    def validate_dt(self, dt: float) -> None:
        """Raise if ``dt`` violates the CFL condition."""
        require_positive(dt, "dt")
        limit = self.cfl_limit()
        require(dt <= limit, f"dt={dt:g} violates CFL limit {limit:g} for {self.grid!r}")

    def step(self, fields: FieldState, dt: float) -> None:
        """Advance E and B in place by one time step using fields.j*."""
        self.validate_dt(dt)
        dx, dy = self.grid.dx, self.grid.dy
        jx, jy, jz = fields.jx, fields.jy, fields.jz
        if self.subtract_mean_current:
            jx = jx - jx.mean()
            jy = jy - jy.mean()
            jz = jz - jz.mean()

        # B half step
        cx, cy, cz = curl(fields.ex, fields.ey, fields.ez, dx, dy)
        fields.bx -= 0.5 * dt * cx
        fields.by -= 0.5 * dt * cy
        fields.bz -= 0.5 * dt * cz
        # E full step
        cx, cy, cz = curl(fields.bx, fields.by, fields.bz, dx, dy)
        fields.ex += dt * (cx - jx)
        fields.ey += dt * (cy - jy)
        fields.ez += dt * (cz - jz)
        # B half step
        cx, cy, cz = curl(fields.ex, fields.ey, fields.ez, dx, dy)
        fields.bx -= 0.5 * dt * cx
        fields.by -= 0.5 * dt * cy
        fields.bz -= 0.5 * dt * cz
        for _ in range(self.marder_passes):
            self.marder_clean(fields, dt)

    def gauss_residual(self, fields: FieldState) -> np.ndarray:
        """``div E - (rho - <rho>)`` on the nodes (zero for exact Gauss law)."""
        div = _ddx(fields.ex, self.grid.dx) + _ddy(fields.ey, self.grid.dy)
        return div - (fields.rho - fields.rho.mean())

    def marder_clean(self, fields: FieldState, dt: float) -> None:
        """One Marder pass: diffuse the Gauss-law error out of E.

        Uses the diffusion-stable coefficient ``d = min(dx, dy)^2 / (4 dt)``
        so ``d * dt`` sits at the explicit-diffusion limit.
        """
        residual = self.gauss_residual(fields)
        d = min(self.grid.dx, self.grid.dy) ** 2 / (4.0 * dt)
        fields.ex += d * dt * _ddx(residual, self.grid.dx)
        fields.ey += d * dt * _ddy(residual, self.grid.dy)

    def divergence_b(self, fields: FieldState) -> float:
        """Max |div B| — conserved at 0 by the scheme from zero initial B."""
        div = _ddx(fields.bx, self.grid.dx) + _ddy(fields.by, self.grid.dy)
        return float(np.abs(div).max())
