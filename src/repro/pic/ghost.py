"""Ghost-grid-point tables with duplicate-access removal.

In the parallel scatter, a particle's vertex nodes owned by other ranks
become *ghost grid points*: contributions are accumulated locally and a
single summed value per unique node is communicated (paper §3.2 —
"removal of duplicated accesses" + "communication coalescing").

The paper describes two table organizations (its Figure 8):

* a **direct address table** — an array indexed by global node id:
  O(1) per access but memory proportional to the whole mesh;
* a **hash table** — memory proportional to the unique off-rank nodes
  actually touched, at the price of probe work per access.

Both are implemented here with identical semantics (property-tested to
agree) and report the op counts / memory footprint the ablation bench
compares.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.util import require

__all__ = ["GhostTableStats", "GhostTable", "DirectAddressTable", "HashGhostTable", "make_ghost_table"]


@dataclass
class GhostTableStats:
    """Accounting of one scatter epoch's duplicate-removal work."""

    entries: int = 0  #: raw (node, value) contributions processed
    unique_nodes: int = 0  #: distinct nodes after duplicate removal (set by flush)
    ops: float = 0.0  #: abstract table operations (for the cost model)
    memory_slots: int = 0  #: table storage, in node-sized slots


class GhostTable(ABC):
    """Accumulates off-rank deposition entries, summing duplicates.

    Parameters
    ----------
    nnodes:
        Global node count (address space of node ids).
    nchannels:
        Value components carried per node (4 for rho+J).
    """

    kind: str = "abstract"

    def __init__(self, nnodes: int, nchannels: int = 4) -> None:
        require(nnodes >= 1, "nnodes must be >= 1")
        require(nchannels >= 1, "nchannels must be >= 1")
        self.nnodes = nnodes
        self.nchannels = nchannels
        self.stats = GhostTableStats()

    @abstractmethod
    def accumulate(self, nodes: np.ndarray, values: np.ndarray) -> None:
        """Add entries: ``nodes`` flat int64 ids, ``values`` ``(nchannels, k)``."""

    @abstractmethod
    def flush(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(unique_nodes, summed_values)`` and reset the table.

        ``unique_nodes`` is sorted int64 of length ``u``;
        ``summed_values`` is ``(nchannels, u)``.
        """

    @abstractmethod
    def account_pooled(self, n_entries: int, n_unique: int) -> float:
        """Record one accumulate+flush epoch performed *outside* the table.

        The flat-rank engine deduplicates all ranks' ghost entries in one
        pooled pass (rank-offset node keys + a single ``unique``/
        ``bincount``), bypassing the per-rank tables — but the virtual
        machine's accounting must stay byte-identical to the looped
        engine.  This method applies exactly the ``stats`` updates that
        ``accumulate(<n_entries entries>)`` followed by ``flush()``
        (yielding ``n_unique`` nodes) would have applied, and returns the
        op-count delta the looped scatter would charge for the epoch.
        """

    def _check(self, nodes: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        nodes = np.asarray(nodes, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.float64)
        require(
            values.shape == (self.nchannels, nodes.size),
            f"values must be ({self.nchannels}, {nodes.size}), got {values.shape}",
        )
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.nnodes):
            raise ValueError(f"node id out of range [0, {self.nnodes})")
        return nodes, values


class DirectAddressTable(GhostTable):
    """Dense per-node accumulator: O(1) access, O(m) memory (Fig 8 right)."""

    kind = "direct"

    def __init__(self, nnodes: int, nchannels: int = 4) -> None:
        super().__init__(nnodes, nchannels)
        self._acc = np.zeros((nchannels, nnodes))
        self._touched = np.zeros(nnodes, dtype=bool)
        self.stats.memory_slots = nnodes * (nchannels + 1)

    def accumulate(self, nodes: np.ndarray, values: np.ndarray) -> None:
        nodes, values = self._check(nodes, values)
        if nodes.size == 0:
            return
        for c in range(self.nchannels):
            self._acc[c] += np.bincount(nodes, weights=values[c], minlength=self.nnodes)
        self._touched[nodes] = True
        self.stats.entries += nodes.size
        self.stats.ops += float(nodes.size)  # one direct store per entry

    def flush(self) -> tuple[np.ndarray, np.ndarray]:
        uniq = np.flatnonzero(self._touched).astype(np.int64)
        summed = self._acc[:, uniq].copy()
        self.stats.unique_nodes = uniq.size
        self._acc.fill(0.0)
        self._touched.fill(False)
        return uniq, summed

    def account_pooled(self, n_entries: int, n_unique: int) -> float:
        self.stats.entries += int(n_entries)
        ops = float(n_entries)  # one direct store per entry
        self.stats.ops += ops
        self.stats.unique_nodes = int(n_unique)
        return ops


class HashGhostTable(GhostTable):
    """Sparse accumulator keyed by node id: memory O(unique) (Fig 8 left).

    Implemented with sorted-unique compression (the vectorized analogue
    of open-addressing inserts); op accounting charges ~3 probes per
    entry, the classic load-factor-0.7 expectation.
    """

    kind = "hash"

    def __init__(self, nnodes: int, nchannels: int = 4) -> None:
        super().__init__(nnodes, nchannels)
        self._pending_nodes: list[np.ndarray] = []
        self._pending_values: list[np.ndarray] = []

    def accumulate(self, nodes: np.ndarray, values: np.ndarray) -> None:
        nodes, values = self._check(nodes, values)
        if nodes.size == 0:
            return
        self._pending_nodes.append(nodes)
        self._pending_values.append(values)
        self.stats.entries += nodes.size
        self.stats.ops += 3.0 * nodes.size  # expected probes per insert

    def flush(self) -> tuple[np.ndarray, np.ndarray]:
        if not self._pending_nodes:
            self.stats.unique_nodes = 0
            return (
                np.empty(0, dtype=np.int64),
                np.empty((self.nchannels, 0)),
            )
        nodes = np.concatenate(self._pending_nodes)
        values = np.concatenate(self._pending_values, axis=1)
        uniq, inverse = np.unique(nodes, return_inverse=True)
        summed = np.empty((self.nchannels, uniq.size))
        for c in range(self.nchannels):
            summed[c] = np.bincount(inverse, weights=values[c], minlength=uniq.size)
        self.stats.unique_nodes = uniq.size
        self.stats.memory_slots = max(
            self.stats.memory_slots, int(uniq.size * (self.nchannels + 1) / 0.7)
        )
        self._pending_nodes.clear()
        self._pending_values.clear()
        return uniq, summed

    def account_pooled(self, n_entries: int, n_unique: int) -> float:
        self.stats.entries += int(n_entries)
        ops = 3.0 * n_entries  # expected probes per insert
        self.stats.ops += ops
        self.stats.unique_nodes = int(n_unique)
        self.stats.memory_slots = max(
            self.stats.memory_slots, int(n_unique * (self.nchannels + 1) / 0.7)
        )
        return ops


def make_ghost_table(kind: str, nnodes: int, nchannels: int = 4) -> GhostTable:
    """Factory: ``kind`` is ``"direct"`` or ``"hash"``."""
    if kind == "direct":
        return DirectAddressTable(nnodes, nchannels)
    if kind == "hash":
        return HashGhostTable(nnodes, nchannels)
    raise ValueError(f"unknown ghost table kind {kind!r}; expected 'direct' or 'hash'")
