"""Electrostatic field solve: periodic Poisson solvers.

The paper's code is electromagnetic, but electrostatic PIC (solve
``lap(phi) = -rho``, then ``E = -grad(phi)``) is the other classic
variant (Lubeck & Faber's comparison code was electrostatic), so the
library supports it as an alternative field solver.

Two methods:

* :meth:`PoissonSolver.solve_fft` — exact spectral solve (global
  communication pattern, like the replicated-mesh codes the paper
  criticizes).
* :meth:`PoissonSolver.solve_jacobi` — iterative 5-point Jacobi sweeps
  (local halo communication, the pattern the paper's field phase
  models).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.grid import Grid2D
from repro.util import require, require_positive

__all__ = ["PoissonSolver"]


class PoissonSolver:
    """Periodic Poisson solver ``lap(phi) = -rho`` on a :class:`Grid2D`.

    The mean of ``rho`` is removed (periodic solvability condition /
    neutralizing background) and ``phi`` is returned with zero mean.
    """

    #: Unit operations per node per Jacobi sweep, for the cost model.
    OPS_PER_NODE_PER_SWEEP = 1.0

    def __init__(self, grid: Grid2D) -> None:
        self.grid = grid
        kx = 2.0 * np.pi * np.fft.fftfreq(grid.nx, d=grid.dx)
        ky = 2.0 * np.pi * np.fft.fftfreq(grid.ny, d=grid.dy)
        # Spectral Laplacian of the 5-point stencil (not the continuum
        # one), so FFT and converged Jacobi agree exactly.
        lam_x = -(2.0 - 2.0 * np.cos(kx * grid.dx)) / grid.dx**2
        lam_y = -(2.0 - 2.0 * np.cos(ky * grid.dy)) / grid.dy**2
        lam = lam_x[None, :] + lam_y[:, None]
        lam[0, 0] = 1.0  # zero mode handled by mean removal
        self._inv_lam = 1.0 / lam

    def solve_fft(self, rho: np.ndarray) -> np.ndarray:
        """Exact solve of the discrete 5-point Poisson problem via FFT."""
        rho = np.asarray(rho, dtype=np.float64)
        require(rho.shape == self.grid.shape, f"rho must be {self.grid.shape}, got {rho.shape}")
        rhs = -(rho - rho.mean())
        phi_hat = np.fft.fft2(rhs) * self._inv_lam
        phi_hat[0, 0] = 0.0
        phi = np.real(np.fft.ifft2(phi_hat))
        return phi - phi.mean()

    def solve_jacobi(
        self,
        rho: np.ndarray,
        *,
        tol: float = 1e-8,
        max_sweeps: int = 20000,
        phi0: np.ndarray | None = None,
    ) -> tuple[np.ndarray, int]:
        """Jacobi iteration on the 5-point stencil.

        Returns ``(phi, sweeps)``; raises :class:`RuntimeError` if the
        residual has not dropped below ``tol`` (relative to the RHS
        norm) within ``max_sweeps``.
        """
        require_positive(tol, "tol")
        require(max_sweeps >= 1, "max_sweeps must be >= 1")
        rho = np.asarray(rho, dtype=np.float64)
        require(rho.shape == self.grid.shape, f"rho must be {self.grid.shape}, got {rho.shape}")
        dx2, dy2 = self.grid.dx**2, self.grid.dy**2
        rhs = -(rho - rho.mean())
        denom = 2.0 / dx2 + 2.0 / dy2
        phi = np.zeros_like(rhs) if phi0 is None else np.array(phi0, dtype=np.float64)
        rhs_norm = max(float(np.abs(rhs).max()), 1e-300)
        for sweep in range(1, max_sweeps + 1):
            neigh = (
                (np.roll(phi, 1, axis=1) + np.roll(phi, -1, axis=1)) / dx2
                + (np.roll(phi, 1, axis=0) + np.roll(phi, -1, axis=0)) / dy2
            )
            phi_new = (neigh - rhs) / denom
            phi_new -= phi_new.mean()
            resid = float(np.abs(self.apply_laplacian(phi_new) - rhs).max())
            phi = phi_new
            if resid <= tol * rhs_norm:
                return phi, sweep
        raise RuntimeError(
            f"Jacobi failed to reach tol={tol:g} in {max_sweeps} sweeps "
            f"(relative residual {resid / rhs_norm:.3e})"
        )

    def apply_laplacian(self, phi: np.ndarray) -> np.ndarray:
        """5-point discrete Laplacian with periodic wrap."""
        dx2, dy2 = self.grid.dx**2, self.grid.dy**2
        return (
            (np.roll(phi, 1, axis=1) - 2.0 * phi + np.roll(phi, -1, axis=1)) / dx2
            + (np.roll(phi, 1, axis=0) - 2.0 * phi + np.roll(phi, -1, axis=0)) / dy2
        )

    def electric_field(self, phi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``E = -grad(phi)`` by centred differences (periodic)."""
        ex = -(np.roll(phi, -1, axis=1) - np.roll(phi, 1, axis=1)) / (2.0 * self.grid.dx)
        ey = -(np.roll(phi, -1, axis=0) - np.roll(phi, 1, axis=0)) / (2.0 * self.grid.dy)
        return ex, ey
