"""Particle-in-cell application: the four phases of the paper's §2.

* Scatter — :mod:`repro.pic.deposition` (CIC charge/current deposition)
* Field solve — :mod:`repro.pic.maxwell` (FDTD, 5-point stencil) and
  :mod:`repro.pic.poisson` (electrostatic option)
* Gather — :mod:`repro.pic.interpolation` (CIC field interpolation)
* Push — :mod:`repro.pic.push` (relativistic Boris pusher)

:class:`SequentialPIC` composes them into the single-processor reference
implementation; :class:`ParallelPIC` runs the same physics SPMD over the
virtual machine with ghost-grid-point communication
(:mod:`repro.pic.ghost`), and :class:`Simulation` drives iterations,
redistribution policies, and history recording.
"""

from repro.pic.deposition import deposit_charge_current, deposition_entries
from repro.pic.interpolation import interpolate_fields
from repro.pic.push import boris_push
from repro.pic.maxwell import MaxwellSolver
from repro.pic.poisson import PoissonSolver
from repro.pic.ghost import DirectAddressTable, HashGhostTable, make_ghost_table
from repro.pic.sequential import SequentialPIC
from repro.pic.parallel import ParallelPIC
from repro.pic.simulation import (
    Simulation,
    SimulationConfig,
    SimulationResult,
    config_from_dict,
    config_to_dict,
)
from repro.pic.diagnostics import DiagnosticsRecorder, DiagnosticsSample
from repro.pic.checkpoint import (
    CheckpointData,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.pic.smoothing import binomial_smooth
from repro.pic.replicated import ReplicatedMeshPIC
from repro.pic.yee import YeePIC, YeeSolver
from repro.pic.parallel_yee import ParallelYeePIC
from repro.pic.zigzag import continuity_residual, deposit_current_zigzag

__all__ = [
    "deposit_charge_current",
    "deposition_entries",
    "interpolate_fields",
    "boris_push",
    "MaxwellSolver",
    "PoissonSolver",
    "DirectAddressTable",
    "HashGhostTable",
    "make_ghost_table",
    "SequentialPIC",
    "ParallelPIC",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "config_to_dict",
    "config_from_dict",
    "DiagnosticsRecorder",
    "DiagnosticsSample",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointData",
    "CheckpointError",
    "binomial_smooth",
    "ReplicatedMeshPIC",
    "YeeSolver",
    "YeePIC",
    "ParallelYeePIC",
    "deposit_current_zigzag",
    "continuity_residual",
]
