"""Sequential reference PIC: the paper's four phases on one processor.

:class:`SequentialPIC` is the ground truth the parallel implementation
is verified against (the integration tests assert numerical equivalence
per iteration) and the single-processor baseline for the efficiency
table (paper Table 3).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.fields import FieldState
from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray
from repro.pic.deposition import deposit_charge_current
from repro.pic.interpolation import interpolate_fields
from repro.pic.maxwell import MaxwellSolver
from repro.pic.poisson import PoissonSolver
from repro.pic.push import boris_push
from repro.pic.smoothing import binomial_smooth
from repro.util import require

__all__ = ["SequentialPIC"]


class SequentialPIC:
    """Single-processor 2D3V relativistic electromagnetic PIC.

    Parameters
    ----------
    grid:
        Domain geometry.
    particles:
        Initial particle set (owned and mutated by the stepper).
    dt:
        Time step; defaults to 90% of the field solver's CFL limit.
    smoothing_passes:
        Binomial-filter passes applied to the deposited sources
        (default 1; see :mod:`repro.pic.smoothing` for why).
    field_solver:
        ``"maxwell"`` (electromagnetic FDTD, the paper's code) or
        ``"electrostatic"`` (periodic Poisson solve each step, B = 0 —
        the Lubeck & Faber-style variant).
    """

    def __init__(
        self,
        grid: Grid2D,
        particles: ParticleArray,
        *,
        dt: float | None = None,
        smoothing_passes: int = 1,
        field_solver: str = "maxwell",
    ) -> None:
        require(smoothing_passes >= 0, "smoothing_passes must be >= 0")
        require(
            field_solver in ("maxwell", "electrostatic"),
            f"unknown field_solver {field_solver!r}",
        )
        self.grid = grid
        self.particles = particles
        self.fields = FieldState.zeros(grid)
        self.solver = MaxwellSolver(grid)
        self.field_solver = field_solver
        self.poisson = PoissonSolver(grid) if field_solver == "electrostatic" else None
        self.dt = dt if dt is not None else 0.9 * self.solver.cfl_limit()
        self.solver.validate_dt(self.dt)
        self.smoothing_passes = smoothing_passes
        self.iteration = 0

    def scatter(self) -> None:
        """Scatter phase: deposit rho and J from the particles."""
        rho, jx, jy, jz = deposit_charge_current(self.grid, self.particles)
        k = self.smoothing_passes
        self.fields.rho = binomial_smooth(rho, k)
        self.fields.jx = binomial_smooth(jx, k)
        self.fields.jy = binomial_smooth(jy, k)
        self.fields.jz = binomial_smooth(jz, k)

    def field_solve(self) -> None:
        """Field-solve phase: advance E, B with the deposited currents.

        Electrostatic mode replaces the FDTD update with an exact
        periodic Poisson solve of the deposited charge (B stays 0).
        """
        if self.field_solver == "electrostatic":
            phi = self.poisson.solve_fft(self.fields.rho)
            self.fields.ex, self.fields.ey = self.poisson.electric_field(phi)
        else:
            self.solver.step(self.fields, self.dt)

    def gather_push(self) -> None:
        """Gather + push phases: interpolate fields and move particles."""
        e, b = interpolate_fields(self.grid, self.fields, self.particles)
        boris_push(self.grid, self.particles, e, b, self.dt)

    def step(self) -> None:
        """One full iteration: scatter, field solve, gather, push."""
        self.scatter()
        self.field_solve()
        self.gather_push()
        self.iteration += 1

    def run(self, niters: int) -> None:
        """Run ``niters`` iterations."""
        require(niters >= 0, "niters must be >= 0")
        for _ in range(niters):
            self.step()

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def total_energy(self) -> float:
        """Field energy plus particle kinetic energy."""
        return self.fields.field_energy(self.grid) + self.particles.kinetic_energy()

    def charge_conservation_error(self) -> float:
        """|total deposited charge - sum of particle charges| (area-weighted)."""
        deposited = self.fields.total_charge(self.grid)
        direct = float((self.particles.w * self.particles.q).sum())
        return abs(deposited - direct) / max(abs(direct), 1e-300)

    def __repr__(self) -> str:
        return (
            f"SequentialPIC(grid={self.grid!r}, n={self.particles.n}, "
            f"dt={self.dt:g}, iter={self.iteration})"
        )
