"""Parallel PIC: the four phases SPMD over the virtual machine.

Implements the paper's target configuration — direct **Lagrangian**
particle movement with **independent partitioning** — plus the direct
**Eulerian** alternative for the Table 1 strategy comparison:

* Scatter: each rank deposits its particles' contributions; entries for
  nodes owned by other ranks pass through a ghost table (duplicate
  removal + coalescing into one message per destination) before the
  all-to-many exchange.
* Field solve: one halo exchange of the node fields along subdomain
  boundaries, then the FDTD update, charged per owned node.
* Gather: owners return E and B at exactly the ghost nodes recorded in
  the scatter phase (the paper's "same ghost grid points ... the
  communication behavior is just the inverse of the scatter phase"),
  then each rank interpolates and
* Push: advances its particles (no communication under Lagrangian
  movement; under Eulerian movement particles migrate to the owner of
  their new cell each step).

Field arrays are held once per machine (not once per rank) with
ownership semantics: every value a rank reads across a subdomain
boundary is *physically communicated* first, and the integration tests
assert that the received buffers equal the owners' data and that the
whole parallel run matches :class:`repro.pic.sequential.SequentialPIC`.

Execution engines
-----------------
Two engines drive the SPMD phases:

* ``engine="flat"`` (default) — the **pooled flat-rank engine**: all
  ranks' particles live in one :class:`~repro.particles.arrays.ParticlePool`
  with segment offsets, and scatter / gather / push / Eulerian migration
  each run as *single* vectorized NumPy passes over the pool (segmented
  duplicate removal via rank-offset node keys, one pooled owner/ghost
  split, one Boris push).  Per-rank results are recovered by slicing at
  segment boundaries.
* ``engine="looped"`` — the reference per-rank implementation: every
  phase iterates ``for r in range(p)`` and calls the kernels on that
  rank's arrays, exactly as a real SPMD program would.

The two engines are **accounting-invariant**: they charge the same
per-rank op counts in the same order and move byte-identical messages,
so ``vm.elapsed()``, ``vm.ops``, and all communication statistics agree
exactly — only host wall-clock differs (the flat engine removes the
O(p) Python interpreter overhead per phase).  ``tests/test_engine_parity.py``
pins this contract.
"""

from __future__ import annotations

import numpy as np

from repro.machine.virtual import VirtualMachine
from repro.mesh.decomposition import MeshDecomposition
from repro.obs.profile import maybe_section
from repro.mesh.fields import FieldState
from repro.mesh.halo import HaloSchedule
from repro.particles.arrays import ParticleArray, ParticlePool
from repro.pic.deposition import CHANNELS, deposition_entries
from repro.pic.ghost import make_ghost_table
from repro.pic.interpolation import gather_from_node_values
from repro.pic.maxwell import MaxwellSolver
from repro.pic.poisson import PoissonSolver
from repro.pic.push import boris_push
from repro.pic.smoothing import binomial_smooth
from repro.machine.collectives import (
    alltoall_concat,
    exchange_by_destination,
    exchange_by_destination_pooled,
)
from repro.parallel_exec.kernels import reduce_rank_rows, scatter_segment
from repro.util import require

__all__ = ["ParallelPIC"]


class ParallelPIC:
    """SPMD PIC stepper on a :class:`VirtualMachine`.

    Parameters
    ----------
    vm:
        The virtual machine (defines ``p`` and the cost model).
    grid:
        Mesh geometry.
    decomp:
        Mesh decomposition (ownership of cells/nodes).
    local_particles:
        Initial per-rank particle sets (length ``vm.p``).
    dt:
        Time step; defaults to 90% of the CFL limit.
    ghost_table:
        Duplicate-removal table kind, ``"hash"`` or ``"direct"``.
    movement:
        ``"lagrangian"`` (fixed assignment; the paper's choice) or
        ``"eulerian"`` (migrate to cell owners every step).
    smoothing_passes:
        Binomial-filter passes on the deposited sources (default 1,
        matching :class:`repro.pic.sequential.SequentialPIC`).  The
        filter is a nearest-neighbour stencil whose halo needs are
        covered by the field-solve exchange; its compute is charged to
        the scatter phase.
    field_solver:
        ``"maxwell"`` (the paper's local FDTD solve with halo exchange)
        or ``"electrostatic"`` (global FFT Poisson solve each step; the
        row/column transpose is physically exchanged through the
        machine — the global-communication pattern of the
        replicated-mesh codes the paper contrasts against).
    engine:
        ``"flat"`` (pooled single-pass kernels, the default) or
        ``"looped"`` (per-rank reference loops).  Both produce identical
        virtual-machine accounting; see the module docstring.
    workers:
        Number of OS worker processes for the flat engine's hot kernels
        (0/1 = in-process).  Ignored with a warning when the platform
        cannot support the multicore backend; results are bit-identical
        either way (the three-way parity contract, DESIGN.md §5.5).
    backend:
        An existing :class:`~repro.parallel_exec.FlatBackend` to execute
        on (shared across recoveries by :class:`~repro.pic.simulation.Simulation`);
        mutually exclusive with ``workers``.  The caller keeps ownership.
    collect_debug:
        When True, retain the most recent halo / gather deliveries in
        ``last_halo`` / ``last_gather_messages`` for tests that verify
        communicated values equal the owners' data.  Off by default so
        benchmarks and long runs do not hold per-step communication
        buffers alive.
    """

    def __init__(
        self,
        vm: VirtualMachine,
        grid,
        decomp: MeshDecomposition,
        local_particles: list[ParticleArray],
        *,
        dt: float | None = None,
        ghost_table: str = "hash",
        movement: str = "lagrangian",
        smoothing_passes: int = 1,
        field_solver: str = "maxwell",
        engine: str = "flat",
        workers: int = 0,
        backend=None,
        collect_debug: bool = False,
    ) -> None:
        require(len(local_particles) == vm.p, "need one particle set per rank")
        require(decomp.p == vm.p, "decomposition and machine rank counts differ")
        require(movement in ("lagrangian", "eulerian"), f"unknown movement {movement!r}")
        require(smoothing_passes >= 0, "smoothing_passes must be >= 0")
        require(
            field_solver in ("maxwell", "electrostatic"),
            f"unknown field_solver {field_solver!r}",
        )
        require(engine in ("looped", "flat"), f"unknown engine {engine!r}")
        require(
            backend is None or engine == "flat",
            "worker backends apply only to the flat engine",
        )
        self._owns_backend = False
        if backend is None and workers not in (0, 1, None):
            require(engine == "flat", "workers apply only to the flat engine")
            from repro.parallel_exec import create_backend

            backend = create_backend(workers, grid)
            self._owns_backend = backend is not None
        #: multicore execution backend (None = in-process kernels)
        self.backend = backend
        self.smoothing_passes = smoothing_passes
        self.field_solver = field_solver
        self.vm = vm
        self.grid = grid
        self.decomp = decomp
        self.particles = list(local_particles)
        self.movement = movement
        self.engine = engine
        self.collect_debug = collect_debug
        self.fields = FieldState.zeros(grid)
        self.solver = MaxwellSolver(grid)
        self.poisson = PoissonSolver(grid) if field_solver == "electrostatic" else None
        self.dt = dt if dt is not None else 0.9 * self.solver.cfl_limit()
        self.solver.validate_dt(self.dt)
        self.halo = HaloSchedule(decomp)
        self.ghost_tables = [
            make_ghost_table(ghost_table, grid.nnodes, len(CHANNELS)) for _ in range(vm.p)
        ]
        self.node_owner = decomp.owner_map
        self.node_counts = decomp.node_counts().astype(float)
        self.iteration = 0
        #: optional :class:`repro.util.guards.InvariantGuard` checked at
        #: the phase boundaries of :meth:`step`; ``None`` (default) keeps
        #: the hot path free of guard work.
        self.guard = None
        #: optional :class:`repro.obs.profile.PhaseProfiler` opening
        #: host-wall sections around the flat engine's kernels; ``None``
        #: (default) keeps one dormant branch per kernel call.  The
        #: profiler never touches the virtual clocks (DESIGN.md §5.8).
        self.profiler = None
        # Ghost schedule of the latest scatter: _ghost_nodes[r][owner] =
        # node ids rank r contributed to that are owned by `owner`.
        self._ghost_nodes: list[dict[int, np.ndarray]] = [dict() for _ in range(vm.p)]
        # Per-rank CIC (nodes, weights) computed by the latest scatter,
        # keyed by particle-array identity.  Particle positions do not
        # change between scatter and gather (the push runs after the
        # gather), so the gather reuses the scatter's vertex evaluation
        # instead of recomputing it; the cache is dropped once consumed.
        self._cic_cache: list[tuple[ParticleArray, np.ndarray, np.ndarray]] | None = None
        # Flat-engine state: the particle pool (lazily rebuilt whenever
        # self.particles is replaced from outside, e.g. by the
        # redistributor) and the pooled CIC cache of the latest scatter.
        self._pool: ParticlePool | None = None
        self._cic_pool_cache: tuple[ParticlePool, np.ndarray, np.ndarray] | None = None
        # Test hooks (populated only when collect_debug=True): the most
        # recent halo / gather deliveries, for verifying that
        # communicated values equal the owners' data.
        self.last_halo: list[dict[int, np.ndarray]] = []
        self.last_gather_messages: list[dict[int, tuple[np.ndarray, np.ndarray]]] = []

    # ------------------------------------------------------------------
    # flat-engine pool management
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ParticlePool:
        """Return the current particle pool, rebuilding it if stale.

        ``self.particles`` is public API: the simulation driver swaps in
        redistributed particle lists between steps.  The pool is valid
        only while ``self.particles`` are exactly its segment views, so
        any external replacement triggers one concatenation rebuild here
        (O(n) copy — everything downstream is views again).  With a
        multicore backend the rebuilt pool's columns live in shared
        memory so worker-side in-place kernels mutate the same pages.
        """
        pool = self._pool
        if pool is not None and pool.owns(self.particles):
            return pool
        if self.backend is not None:
            pool = self.backend.pool_from_ranks(self.particles)
        else:
            pool = ParticlePool.from_ranks(self.particles)
        self._pool = pool
        self.particles = list(pool.views)
        self._cic_pool_cache = None
        return pool

    def _install_pool(self, pool: ParticlePool) -> None:
        """Adopt a freshly built pool (post-migration)."""
        self._pool = pool
        self.particles = list(pool.views)
        self._cic_pool_cache = None

    # ------------------------------------------------------------------
    # scatter phase
    # ------------------------------------------------------------------
    def scatter(self) -> None:
        """Deposit rho and J with ghost-point communication."""
        if self.engine == "flat":
            acc = self._scatter_flat()
        else:
            acc = self._scatter_looped()
        self._finish_scatter(acc)

    def _scatter_looped(self) -> np.ndarray:
        """Per-rank reference scatter; returns the accumulated channels."""
        vm = self.vm
        grid = self.grid
        nnodes = grid.nnodes
        acc = np.zeros((len(CHANNELS), nnodes))
        sends: list[dict[int, tuple[np.ndarray, np.ndarray]]] = []
        ghost_nodes: list[dict[int, np.ndarray]] = []
        cic_cache: list[tuple[ParticleArray, np.ndarray, np.ndarray]] = []
        nchannels = len(CHANNELS)
        with vm.phase("scatter"):
            table_ops = np.zeros(vm.p)
            for r in range(vm.p):
                parts = self.particles[r]
                vertices = grid.cic_vertices_weights(parts.x, parts.y)
                cic_cache.append((parts, vertices[0], vertices[1]))
                nodes, values = deposition_entries(grid, parts, vertices)
                flat_nodes = nodes.ravel()
                flat_values = values.reshape(nchannels, -1)
                owners = self.node_owner[flat_nodes]
                mine = owners == r
                ghost_idx = np.flatnonzero(~mine)
                if ghost_idx.size:
                    mine_idx = np.flatnonzero(mine)
                    nodes_mine = flat_nodes.take(mine_idx)
                    values_mine = flat_values.take(mine_idx, axis=1)
                else:
                    nodes_mine = flat_nodes
                    values_mine = flat_values
                # On-rank contributions accumulate directly.
                for c in range(nchannels):
                    acc[c] += np.bincount(
                        nodes_mine, weights=values_mine[c], minlength=nnodes
                    )
                chunk: dict[int, tuple[np.ndarray, np.ndarray]] = {}
                ghosts: dict[int, np.ndarray] = {}
                if ghost_idx.size:
                    # Off-rank contributions: duplicate removal + coalescing.
                    table = self.ghost_tables[r]
                    ops_before = table.stats.ops
                    table.accumulate(
                        flat_nodes.take(ghost_idx), flat_values.take(ghost_idx, axis=1)
                    )
                    uniq, summed = table.flush()
                    table_ops[r] = table.stats.ops - ops_before
                    ghost_owner = self.node_owner[uniq]
                    for owner in np.unique(ghost_owner):
                        sel = ghost_owner == owner
                        ids = uniq[sel]
                        chunk[int(owner)] = (ids, np.ascontiguousarray(summed[:, sel]))
                        ghosts[int(owner)] = ids
                sends.append(chunk)
                ghost_nodes.append(ghosts)
            vm.charge_ops("scatter", np.array([4.0 * p.n for p in self.particles]))
            vm.charge_ops("table", table_ops)

            recv = vm.alltoallv(sends)
            merge_ops = np.zeros(vm.p)
            for r in range(vm.p):
                for _, (ids, vals) in sorted(recv[r].items()):
                    for c in range(len(CHANNELS)):
                        acc[c] += np.bincount(ids, weights=vals[c], minlength=nnodes)
                    merge_ops[r] += ids.size
            vm.charge_ops("table", merge_ops)

        self._ghost_nodes = ghost_nodes
        self._cic_cache = cic_cache
        return acc

    def _scatter_flat(self) -> np.ndarray:
        """Pooled scatter: one vectorized pass over all ranks' particles.

        Identical accounting to :meth:`_scatter_looped`: the same op
        counts are charged in the same order and every exchanged message
        carries byte-identical (ids, values) payloads — the pooled
        duplicate removal reproduces each rank's ghost-table output
        bit-for-bit (entries stay in per-rank order inside the pool).

        Deposition reduces at *rank granularity* (per-rank partial rows
        added in ascending rank order, then per-message merges in the
        looped engine's order), so the accumulated channels are also
        bit-identical to the looped engine — and independent of how a
        multicore backend shards the pool across workers.
        """
        vm = self.vm
        grid = self.grid
        nnodes = grid.nnodes
        p = vm.p
        nchannels = len(CHANNELS)
        pool = self._ensure_pool()
        counts = pool.counts
        acc = np.zeros((nchannels, nnodes))
        sends: list[dict[int, tuple[np.ndarray, np.ndarray]]] = [dict() for _ in range(p)]
        ghost_nodes: list[dict[int, np.ndarray]] = [dict() for _ in range(p)]
        backend = self.backend
        prof = self.profiler
        with vm.phase("scatter"):
            with maybe_section(prof, "deposit"):
                if backend is not None:
                    rows, entries_per_rank, uniq_per_rank, messages = backend.scatter(
                        pool, self.node_owner, nnodes
                    )
                    # each worker holds its segment's CIC evaluation locally
                    self._cic_pool_cache = None
                else:
                    rows = np.empty((p, nchannels, nnodes))
                    vertices, entries_per_rank, uniq_per_rank, messages = scatter_segment(
                        grid, pool.array, counts, 0, self.node_owner, nnodes, rows
                    )
                    self._cic_pool_cache = (pool, vertices[0], vertices[1])
            with maybe_section(prof, "reduce"):
                reduce_rank_rows(rows, p, acc)

            table_ops = np.zeros(p)
            for r in np.flatnonzero(entries_per_rank):
                table_ops[r] = self.ghost_tables[r].account_pooled(
                    int(entries_per_rank[r]), int(uniq_per_rank[r])
                )
            for r in range(p):
                for owner, ids, vals in messages[r]:
                    sends[r][owner] = (ids, vals)
                    ghost_nodes[r][owner] = ids
            vm.charge_ops("scatter", 4.0 * counts.astype(float))
            vm.charge_ops("table", table_ops)

            with maybe_section(prof, "ghost_merge"):
                recv = vm.alltoallv(sends)
                # Merge received ghost contributions exactly as the looped
                # engine does — one bincount per message, destinations in
                # rank order, sources sorted — so the per-node addition
                # sequence (hence the floats) matches bit-for-bit.
                merge_ops = np.zeros(p)
                for r in range(p):
                    for _, (ids, vals) in sorted(recv[r].items()):
                        for c in range(nchannels):
                            acc[c] += np.bincount(ids, weights=vals[c], minlength=nnodes)
                        merge_ops[r] += ids.size
                vm.charge_ops("table", merge_ops)

        self._ghost_nodes = ghost_nodes
        self._cic_cache = None
        return acc

    def _finish_scatter(self, acc: np.ndarray) -> None:
        """Scale, smooth, and install the deposited sources."""
        vm = self.vm
        grid = self.grid
        scale = 1.0 / (grid.dx * grid.dy)
        shaped = (acc * scale).reshape(len(CHANNELS), grid.ny, grid.nx)
        k = self.smoothing_passes
        if k:
            with vm.phase("scatter"):
                # nearest-neighbour filter: one op per node per channel/pass
                vm.charge_ops("field", self.node_counts * len(CHANNELS) * k)
        self.fields.rho = binomial_smooth(shaped[0], k)
        self.fields.jx = binomial_smooth(shaped[1], k)
        self.fields.jy = binomial_smooth(shaped[2], k)
        self.fields.jz = binomial_smooth(shaped[3], k)

    # ------------------------------------------------------------------
    # field-solve phase
    # ------------------------------------------------------------------
    def field_solve(self) -> None:
        """Advance the fields: local FDTD (default) or global Poisson."""
        if self.field_solver == "electrostatic":
            self._field_solve_electrostatic()
        else:
            self._field_solve_maxwell()

    def _field_solve_maxwell(self) -> None:
        """Halo exchange of the node fields, then the FDTD update."""
        vm = self.vm
        with vm.phase("field"):
            node_values = self._field_node_values()
            halo_recv = self.halo.exchange(vm, node_values, ncomponents=6)
            if self.collect_debug:
                self.last_halo = halo_recv
            vm.charge_ops("field", self.node_counts)
            self.solver.step(self.fields, self.dt)

    def _field_solve_electrostatic(self) -> None:
        """Global FFT Poisson solve with a physically-exchanged transpose.

        A distributed 2-D FFT over row-block storage needs one global
        transpose in each direction; we exchange the real row-block
        pieces of rho through the machine (an all-to-all of ``m / p^2``
        blocks) before and after the solve, charging the FFT's
        ``O((m / p) log m)`` butterflies per rank.
        """
        vm = self.vm
        grid = self.grid
        with vm.phase("field"):
            # all-to-all transpose of the row-blocked rho, both ways
            row_bounds = np.linspace(0, grid.ny, vm.p + 1).astype(int)
            col_bounds = np.linspace(0, grid.nx, vm.p + 1).astype(int)
            send: list[dict[int, np.ndarray]] = []
            for r in range(vm.p):
                rows = self.fields.rho[row_bounds[r] : row_bounds[r + 1]]
                chunk = {
                    dst: np.ascontiguousarray(rows[:, col_bounds[dst] : col_bounds[dst + 1]])
                    for dst in range(vm.p)
                    if rows.size and col_bounds[dst + 1] > col_bounds[dst]
                }
                send.append(chunk)
            vm.alltoallv(send)  # forward transpose
            vm.alltoallv(send)  # inverse transpose (same volume)
            m = grid.nnodes
            vm.charge_ops("field", (m / vm.p) * np.log2(max(m, 2)) / 4.0)
            phi = self.poisson.solve_fft(self.fields.rho)
            self.fields.ex, self.fields.ey = self.poisson.electric_field(phi)

    def _field_node_values(self) -> np.ndarray:
        f = self.fields
        return np.stack(
            [
                f.ex.ravel(),
                f.ey.ravel(),
                f.ez.ravel(),
                f.bx.ravel(),
                f.by.ravel(),
                f.bz.ravel(),
            ]
        )

    # ------------------------------------------------------------------
    # gather + push phases
    # ------------------------------------------------------------------
    def gather_push(self) -> None:
        """Return ghost-node fields to contributors, interpolate, push."""
        if self.engine == "flat":
            self._gather_push_flat()
        else:
            self._gather_push_looped()

    def _gather_sends(
        self, node_values: np.ndarray
    ) -> list[dict[int, tuple[np.ndarray, np.ndarray]]]:
        """Inverse of the scatter exchange: owners send E, B at the
        ghost nodes each contributor registered this iteration."""
        sends: list[dict[int, tuple[np.ndarray, np.ndarray]]] = [
            dict() for _ in range(self.vm.p)
        ]
        for r in range(self.vm.p):
            for owner, ids in self._ghost_nodes[r].items():
                sends[owner][r] = (ids, np.ascontiguousarray(node_values[:, ids]))
        return sends

    def _gather_push_looped(self) -> None:
        vm = self.vm
        grid = self.grid
        node_values = self._field_node_values()
        with vm.phase("gather"):
            recv = vm.alltoallv(self._gather_sends(node_values))
            if self.collect_debug:
                self.last_gather_messages = recv
            vm.charge_ops("gather", np.array([4.0 * p.n for p in self.particles]))
            cached = self._cic_cache
            self._cic_cache = None  # positions change in the push below
            eb = []
            for r in range(vm.p):
                parts = self.particles[r]
                if cached is not None and cached[r][0] is parts:
                    nodes, weights = cached[r][1], cached[r][2]
                else:
                    nodes, weights = grid.cic_vertices_weights(parts.x, parts.y)
                both = gather_from_node_values(node_values, nodes, weights)
                eb.append(both)
        with vm.phase("push"):
            vm.charge_ops("push", np.array([float(p.n) for p in self.particles]))
            for r in range(vm.p):
                parts = self.particles[r]
                if parts.n:
                    boris_push(grid, parts, eb[r][:3], eb[r][3:], self.dt)
        if self.movement == "eulerian":
            self._migrate_eulerian()

    def _gather_push_flat(self) -> None:
        """Pooled gather + push: one interpolation and one Boris pass.

        The ghost-field exchange is identical to the looped engine (same
        ``_ghost_nodes`` schedule, same payloads); interpolation and the
        push are per-particle independent, so running them once over the
        pool is bit-identical to per-rank execution.
        """
        vm = self.vm
        grid = self.grid
        pool = self._ensure_pool()
        backend = self.backend
        prof = self.profiler
        node_values = self._field_node_values()
        eb = None
        with vm.phase("gather"):
            recv = vm.alltoallv(self._gather_sends(node_values))
            if self.collect_debug:
                self.last_gather_messages = recv
            vm.charge_ops("gather", 4.0 * pool.counts.astype(float))
            if backend is None:
                with maybe_section(prof, "interpolate"):
                    cached = self._cic_pool_cache
                    self._cic_pool_cache = None  # positions change in the push below
                    if cached is not None and cached[0] is pool:
                        nodes, weights = cached[1], cached[2]
                    else:
                        nodes, weights = grid.cic_vertices_weights(pool.array.x, pool.array.y)
                    eb = gather_from_node_values(node_values, nodes, weights)
        with vm.phase("push"):
            vm.charge_ops("push", pool.counts.astype(float))
            with maybe_section(prof, "boris_push"):
                if backend is not None:
                    # workers interpolate + push their pool slices in place,
                    # reusing each slice's scatter-time CIC evaluation
                    backend.gather_push(pool, node_values, self.dt)
                elif pool.n:
                    boris_push(grid, pool.array, eb[:3], eb[3:], self.dt)
        if self.movement == "eulerian":
            self._migrate_eulerian()

    def set_decomposition(self, decomp: MeshDecomposition) -> None:
        """Install a new mesh decomposition (adaptive rebalancing).

        The caller is responsible for having migrated field node values
        and particles (see :class:`repro.core.adaptive.AdaptiveMeshRebalancer`);
        this method refreshes the ownership map, node counts, and halo
        schedule.
        """
        require(decomp.p == self.vm.p, "decomposition and machine rank counts differ")
        require(decomp.grid is self.grid or decomp.grid.shape == self.grid.shape,
                "decomposition must cover the same grid")
        self.decomp = decomp
        self.node_owner = decomp.owner_map
        self.node_counts = decomp.node_counts().astype(float)
        self.halo = HaloSchedule(decomp)

    def _migrate_eulerian(self) -> None:
        """Move particles to the owner of their (new) cell."""
        if self.engine == "flat":
            self._migrate_eulerian_flat()
        else:
            self._migrate_eulerian_looped()

    def _migrate_eulerian_looped(self) -> None:
        vm = self.vm
        with vm.phase("migration"):
            payloads = []
            dests = []
            for r in range(vm.p):
                parts = self.particles[r]
                cells = self.grid.cell_id_of_positions(parts.x, parts.y)
                owner = self.decomp.owner_of_cells(cells)
                payloads.append(parts.to_matrix())
                dests.append(owner)
            vm.charge_ops("index", np.array([float(p.n) for p in self.particles]))
            received = exchange_by_destination(vm, payloads, dests)
            self.particles = [ParticleArray.from_matrix(m) for m in received]
            self._pool = None

    def _migrate_eulerian_flat(self) -> None:
        """Pooled Eulerian migration: one owner lookup, one sorted exchange.

        With a multicore backend the owner lookup, per-segment stable
        destination sort, and transport-matrix packing all run in the
        workers; the send dicts they produce are byte-identical to
        :func:`exchange_by_destination_pooled`'s partitioning, so the
        machine sees the same messages either way.
        """
        vm = self.vm
        backend = self.backend
        prof = self.profiler
        with vm.phase("migration"):
            pool = self._ensure_pool()
            if backend is not None:
                vm.charge_ops("index", pool.counts.astype(float))
                with maybe_section(prof, "partition"):
                    sends = backend.migration_sends(pool, self.decomp.owner_map)
                with maybe_section(prof, "exchange"):
                    received = alltoall_concat(vm, sends)
                    self._install_pool(backend.pool_from_matrices(received))
            else:
                with maybe_section(prof, "partition"):
                    parts = pool.array
                    cells = self.grid.cell_id_of_positions(parts.x, parts.y)
                    owner = self.decomp.owner_of_cells(cells)
                    matrix = parts.to_matrix()
                vm.charge_ops("index", pool.counts.astype(float))
                with maybe_section(prof, "exchange"):
                    received = exchange_by_destination_pooled(vm, matrix, owner, pool.offsets)
                    self._install_pool(ParticlePool.from_matrices(received))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the multicore backend if this stepper created it.

        Backends passed in via ``backend=`` belong to their creator
        (:class:`~repro.pic.simulation.Simulation` keeps one across
        rank-failure recoveries) and are left running.
        """
        if self._owns_backend and self.backend is not None:
            self.backend.close()
        self.backend = None

    # ------------------------------------------------------------------
    def step(self) -> None:
        """One full iteration: scatter, field solve, gather, push.

        When an invariant guard is installed it runs after the scatter
        (deposited sources must be finite) and after the push (particles
        conserved and finite) — the two points where transport faults or
        kernel bugs would otherwise silently poison the physics.
        """
        guard = self.guard
        self.scatter()
        if guard is not None:
            guard.after_scatter(self)
        self.field_solve()
        self.gather_push()
        if guard is not None:
            guard.after_push(self)
        self.iteration += 1

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def all_particles(self) -> ParticleArray:
        """All particles concatenated (rank order) — for verification."""
        return ParticleArray.concat(self.particles)

    def total_energy(self) -> float:
        """Field energy plus particle kinetic energy."""
        kinetic = sum(p.kinetic_energy() for p in self.particles)
        return self.fields.field_energy(self.grid) + kinetic

    def __repr__(self) -> str:
        return (
            f"ParallelPIC(p={self.vm.p}, grid={self.grid!r}, "
            f"n={sum(p.n for p in self.particles)}, movement={self.movement!r}, "
            f"engine={self.engine!r})"
        )
