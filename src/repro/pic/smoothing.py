"""Binomial smoothing of deposited sources.

Plain CIC deposition injects grid-scale noise into rho and J; on a
collocated centred-difference Maxwell grid the highest-k modes have
(near-)zero numerical group velocity, so that noise accumulates instead
of radiating away and eventually heats the plasma.  The standard remedy
is a binomial (1-2-1) digital filter applied to the deposited sources —
a nearest-neighbour stencil, so in the parallel code its data needs are
covered by the same halo pattern as the field solve.
"""

from __future__ import annotations

import numpy as np

from repro.util import require

__all__ = ["binomial_smooth"]


def binomial_smooth(a: np.ndarray, passes: int = 1) -> np.ndarray:
    """Apply ``passes`` rounds of the 2-D binomial 1-2-1 filter.

    Periodic boundaries; preserves the array mean exactly (the filter is
    a convex combination), hence total deposited charge is conserved.
    """
    require(passes >= 0, f"passes must be >= 0, got {passes}")
    a = np.asarray(a, dtype=np.float64)
    require(a.ndim == 2, f"expected a 2-D field array, got shape {a.shape}")
    out = a
    for _ in range(passes):
        sx = 0.25 * (np.roll(out, 1, axis=1) + 2.0 * out + np.roll(out, -1, axis=1))
        out = 0.25 * (np.roll(sx, 1, axis=0) + 2.0 * sx + np.roll(sx, -1, axis=0))
    return out
