"""Parallel charge-conserving PIC: the modern loop on the 1996 machinery.

:class:`ParallelYeePIC` runs the Yee + zigzag loop of
:class:`repro.pic.yee.YeePIC` SPMD over the virtual machine, reusing the
paper's distribution framework (curve-block decomposition, aligned
particle partitions, ghost tables, halo schedules).  It demonstrates
that the paper's *data-distribution* contribution is independent of the
*kernel* generation: alignment pays off identically for a 2003-style
charge-conserving loop.

Communication structure per iteration:

1. **Gather (request/reply).**  The modern loop gathers *before* it
   scatters, so there is no scatter-derived ghost schedule to reuse
   (the paper's trick).  Instead each rank sends every owner the list
   of off-rank nodes its particles need (the union over the six
   staggered component stencils), and owners reply with the six
   component values — the classic inspector/executor pattern, two
   message rounds.
2. **Push** — local.
3. **Scatter.**  Zigzag current entries (face-centred Jx, Jy) and CIC
   charge entries split into on-rank accumulation and per-component
   ghost tables; one coalesced message per destination.
4. **Field solve.**  Halo exchange of the six staggered components,
   then the Yee update, charged per owned node.

The discrete Gauss law holds to machine precision in the parallel runs
too — property-tested, along with numerical equivalence to the
sequential :class:`YeePIC`.
"""

from __future__ import annotations

import numpy as np

from repro.machine.virtual import VirtualMachine
from repro.mesh.decomposition import MeshDecomposition
from repro.mesh.fields import FieldState
from repro.mesh.grid import Grid2D
from repro.mesh.halo import HaloSchedule
from repro.particles.arrays import ParticleArray
from repro.pic.deposition import deposition_entries
from repro.pic.ghost import make_ghost_table
from repro.pic.interpolation import gather_from_node_values
from repro.pic.push import boris_push
from repro.pic.yee import YeeSolver, staggered_cic
from repro.pic.zigzag import deposit_current_zigzag
from repro.util import require

__all__ = ["ParallelYeePIC"]

#: Stagger shifts of each gathered component, in cell units.
_COMPONENT_SHIFTS = {
    "ex": (0.5, 0.0),
    "ey": (0.0, 0.5),
    "ez": (0.0, 0.0),
    "bx": (0.0, 0.5),
    "by": (0.5, 0.0),
    "bz": (0.5, 0.5),
}


class ParallelYeePIC:
    """SPMD charge-conserving PIC stepper on a :class:`VirtualMachine`.

    Parameters mirror :class:`repro.pic.parallel.ParallelPIC` (Lagrangian
    movement only — combine with the usual
    :class:`~repro.core.redistribution.Redistributor` for dynamic
    redistribution).
    """

    def __init__(
        self,
        vm: VirtualMachine,
        grid: Grid2D,
        decomp: MeshDecomposition,
        local_particles: list[ParticleArray],
        *,
        dt: float | None = None,
        ghost_table: str = "hash",
    ) -> None:
        require(len(local_particles) == vm.p, "need one particle set per rank")
        require(decomp.p == vm.p, "decomposition and machine rank counts differ")
        self.vm = vm
        self.grid = grid
        self.decomp = decomp
        self.particles = list(local_particles)
        self.solver = YeeSolver(grid)
        self.dt = dt if dt is not None else 0.9 * self.solver.cfl_limit()
        self.solver.validate_dt(self.dt)
        self.fields = FieldState.zeros(grid)
        self.halo = HaloSchedule(decomp)
        self.node_owner = decomp.owner_map
        self.node_counts = decomp.node_counts().astype(float)
        self._ghost_kind = ghost_table
        self.iteration = 0
        # consistent electrostatic initial condition (setup, uncharged)
        self._distributed_rho()
        self.fields.ex, self.fields.ey = self.solver.initial_e_from_rho(self.fields.rho)
        # test hook: last gather replies
        self.last_gather_replies: list[dict[int, tuple[np.ndarray, np.ndarray]]] = []

    # ------------------------------------------------------------------
    def _field_node_values(self) -> np.ndarray:
        f = self.fields
        return np.stack(
            [f.ex.ravel(), f.ey.ravel(), f.ez.ravel(), f.bx.ravel(), f.by.ravel(), f.bz.ravel()]
        )

    def _distributed_rho(self) -> None:
        """CIC charge deposition with ghost communication (rho only)."""
        vm = self.vm
        grid = self.grid
        acc = np.zeros(grid.nnodes)
        with vm.phase("scatter"):
            sends: list[dict[int, tuple[np.ndarray, np.ndarray]]] = []
            for r in range(vm.p):
                parts = self.particles[r]
                nodes, weights = grid.cic_vertices_weights(parts.x, parts.y)
                values = (weights * (parts.w * parts.q)[:, None]).ravel()
                flat = nodes.ravel()
                owners = self.node_owner[flat]
                mine = owners == r
                acc += np.bincount(flat[mine], weights=values[mine], minlength=grid.nnodes)
                table = make_ghost_table(self._ghost_kind, grid.nnodes, 1)
                table.accumulate(flat[~mine], values[~mine][None, :])
                uniq, summed = table.flush()
                chunk: dict[int, tuple[np.ndarray, np.ndarray]] = {}
                if uniq.size:
                    ghost_owner = self.node_owner[uniq]
                    for owner in np.unique(ghost_owner):
                        sel = ghost_owner == owner
                        chunk[int(owner)] = (uniq[sel], np.ascontiguousarray(summed[:, sel]))
                sends.append(chunk)
            vm.charge_ops("scatter", np.array([4.0 * p.n for p in self.particles]))
            recv = vm.alltoallv(sends)
            for r in range(vm.p):
                for _, (ids, vals) in sorted(recv[r].items()):
                    acc += np.bincount(ids, weights=vals[0], minlength=grid.nnodes)
        self.fields.rho = (acc / (grid.dx * grid.dy)).reshape(grid.shape)

    # ------------------------------------------------------------------
    # gather phase (request/reply)
    # ------------------------------------------------------------------
    def _gather(self) -> list[np.ndarray]:
        """Return per-rank (6, n_local) interpolated staggered fields."""
        vm = self.vm
        grid = self.grid
        node_values = self._field_node_values()
        per_rank_stencils: list[dict[str, tuple[np.ndarray, np.ndarray]]] = []
        requests: list[dict[int, np.ndarray]] = []
        with vm.phase("gather"):
            for r in range(vm.p):
                parts = self.particles[r]
                stencils = {
                    name: staggered_cic(grid, parts.x, parts.y, sx, sy)
                    for name, (sx, sy) in _COMPONENT_SHIFTS.items()
                }
                per_rank_stencils.append(stencils)
                all_nodes = (
                    np.unique(np.concatenate([s[0].ravel() for s in stencils.values()]))
                    if parts.n
                    else np.empty(0, dtype=np.int64)
                )
                owners = self.node_owner[all_nodes]
                off = owners != r
                chunk: dict[int, np.ndarray] = {}
                needed = all_nodes[off]
                for owner in np.unique(owners[off]):
                    chunk[int(owner)] = needed[owners[off] == owner]
                requests.append(chunk)
            vm.charge_ops("gather", np.array([4.0 * p.n for p in self.particles]))
            # round 1: requests (node-id lists)
            incoming = vm.alltoallv(requests)
            # round 2: replies (six component values per requested node)
            replies: list[dict[int, tuple[np.ndarray, np.ndarray]]] = [
                dict() for _ in range(vm.p)
            ]
            for owner in range(vm.p):
                for requester, ids in incoming[owner].items():
                    replies[owner][requester] = (
                        ids,
                        np.ascontiguousarray(node_values[:, ids]),
                    )
            delivered = vm.alltoallv(replies)
            self.last_gather_replies = delivered
            # interpolate (values verified equal to owners' data by tests)
            out = []
            for r in range(vm.p):
                stencils = per_rank_stencils[r]
                rows = []
                for c, name in enumerate(_COMPONENT_SHIFTS):
                    nodes, weights = stencils[name]
                    rows.append(
                        gather_from_node_values(node_values[c : c + 1], nodes, weights)[0]
                    )
                out.append(np.stack(rows) if rows else np.zeros((6, 0)))
        return out

    # ------------------------------------------------------------------
    # scatter phase (zigzag currents + CIC charge)
    # ------------------------------------------------------------------
    def _scatter(self, olds: list[tuple[np.ndarray, np.ndarray]]) -> None:
        vm = self.vm
        grid = self.grid
        nnodes = grid.nnodes
        acc = np.zeros((4, nnodes))  # jx, jy, jz, rho (jx/jy face-centred)
        with vm.phase("scatter"):
            sends: list[dict[int, tuple[np.ndarray, np.ndarray]]] = []
            for r in range(vm.p):
                parts = self.particles[r]
                x_old, y_old = olds[r]
                jx, jy = deposit_current_zigzag(
                    grid, x_old, y_old, parts.x, parts.y, parts.w * parts.q, self.dt
                )
                # jz and rho by CIC (node-centred)
                nodes, values = deposition_entries(grid, parts)
                flat = nodes.ravel()
                jz_vals = values[3].ravel()
                rho_vals = values[0].ravel()
                # split everything by owner; the dense jx/jy grids are
                # converted to sparse (node, value) entry lists first
                entries_nodes = []
                entries_vals = []
                for c, dense in enumerate((jx.ravel() * grid.dx * grid.dy, jy.ravel() * grid.dx * grid.dy)):
                    nz = np.flatnonzero(dense)
                    entries_nodes.append(nz)
                    vals = np.zeros((4, nz.size))
                    vals[c] = dense[nz]
                    entries_vals.append(vals)
                cic_vals = np.zeros((4, flat.size))
                cic_vals[2] = jz_vals
                cic_vals[3] = rho_vals
                entries_nodes.append(flat)
                entries_vals.append(cic_vals)
                all_nodes = np.concatenate(entries_nodes)
                all_vals = np.concatenate(entries_vals, axis=1)
                owners = self.node_owner[all_nodes]
                mine = owners == r
                for c in range(4):
                    acc[c] += np.bincount(
                        all_nodes[mine], weights=all_vals[c][mine], minlength=nnodes
                    )
                table = make_ghost_table(self._ghost_kind, nnodes, 4)
                table.accumulate(all_nodes[~mine], all_vals[:, ~mine])
                uniq, summed = table.flush()
                chunk: dict[int, tuple[np.ndarray, np.ndarray]] = {}
                if uniq.size:
                    ghost_owner = self.node_owner[uniq]
                    for owner in np.unique(ghost_owner):
                        sel = ghost_owner == owner
                        chunk[int(owner)] = (uniq[sel], np.ascontiguousarray(summed[:, sel]))
                sends.append(chunk)
            vm.charge_ops("scatter", np.array([8.0 * p.n for p in self.particles]))
            recv = vm.alltoallv(sends)
            for r in range(vm.p):
                for _, (ids, vals) in sorted(recv[r].items()):
                    for c in range(4):
                        acc[c] += np.bincount(ids, weights=vals[c], minlength=nnodes)
        scale = 1.0 / (grid.dx * grid.dy)
        self.fields.jx = (acc[0] * scale).reshape(grid.shape)
        self.fields.jy = (acc[1] * scale).reshape(grid.shape)
        self.fields.jz = (acc[2] * scale).reshape(grid.shape)
        self.fields.rho = (acc[3] * scale).reshape(grid.shape)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """One charge-conserving iteration: gather, push, scatter, solve."""
        vm = self.vm
        eb = self._gather()
        olds = []
        with vm.phase("push"):
            vm.charge_ops("push", np.array([float(p.n) for p in self.particles]))
            for r in range(vm.p):
                parts = self.particles[r]
                olds.append((parts.x.copy(), parts.y.copy()))
                if parts.n:
                    boris_push(self.grid, parts, eb[r][:3], eb[r][3:], self.dt)
        self._scatter(olds)
        with vm.phase("field"):
            self.halo.exchange(vm, self._field_node_values(), ncomponents=6)
            vm.charge_ops("field", self.node_counts)
            self.solver.step(self.fields, self.dt)
        self.iteration += 1

    # ------------------------------------------------------------------
    def all_particles(self) -> ParticleArray:
        """All particles concatenated in rank order."""
        return ParticleArray.concat(self.particles)

    def gauss_error(self) -> float:
        """Max |div E - rho| (machine precision by construction)."""
        return float(
            np.abs(self.solver.gauss_residual(self.fields, self.fields.rho)).max()
        )

    def __repr__(self) -> str:
        return (
            f"ParallelYeePIC(p={self.vm.p}, grid={self.grid!r}, "
            f"n={sum(p.n for p in self.particles)})"
        )
