"""Replicated-mesh parallel PIC (Lubeck & Faber's scheme, paper §3).

The paper motivates its distributed-mesh design by contrast with the
earlier direct-Lagrangian implementation of Lubeck and Faber (iPSC/1),
which *replicates* the whole mesh on every processor:

* Scatter — every rank deposits its particles into a private full-mesh
  copy, then a **global element-wise sum** combines the copies.
* Field solve — each rank updates an ``m / p`` share of the mesh, then a
  **global concatenation** broadcasts the full field arrays back to all
  ranks.
* Gather and push — purely local (each rank has every node's fields).

No alignment, ghost tables, or redistribution are needed — but the two
global operations move the whole mesh every iteration, so communication
grows with ``m`` regardless of how well particles are placed.  The paper
notes this "is an efficient algorithm for small hypercubes" while "for
large hypercubes the communication due to global operations ... dominates";
``benchmarks/bench_ablation_replicated_mesh.py`` reproduces that
crossover against :class:`repro.pic.parallel.ParallelPIC`.
"""

from __future__ import annotations

import numpy as np

from repro.machine.virtual import VirtualMachine
from repro.mesh.fields import FieldState
from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray
from repro.pic.deposition import CHANNELS, deposition_entries
from repro.pic.interpolation import gather_from_node_values
from repro.pic.maxwell import MaxwellSolver
from repro.pic.push import boris_push
from repro.pic.smoothing import binomial_smooth
from repro.util import require

__all__ = ["ReplicatedMeshPIC"]


class ReplicatedMeshPIC:
    """Direct-Lagrangian PIC with a fully replicated mesh.

    Parameters mirror :class:`repro.pic.parallel.ParallelPIC` where they
    apply; there is no decomposition (every rank owns a full copy) and no
    redistribution (placement is irrelevant to communication).
    """

    def __init__(
        self,
        vm: VirtualMachine,
        grid: Grid2D,
        local_particles: list[ParticleArray],
        *,
        dt: float | None = None,
        smoothing_passes: int = 1,
    ) -> None:
        require(len(local_particles) == vm.p, "need one particle set per rank")
        require(smoothing_passes >= 0, "smoothing_passes must be >= 0")
        self.vm = vm
        self.grid = grid
        self.particles = list(local_particles)
        self.fields = FieldState.zeros(grid)
        self.solver = MaxwellSolver(grid)
        self.dt = dt if dt is not None else 0.9 * self.solver.cfl_limit()
        self.solver.validate_dt(self.dt)
        self.smoothing_passes = smoothing_passes
        self.iteration = 0

    # ------------------------------------------------------------------
    def scatter(self) -> None:
        """Per-rank deposition into private copies + global sum."""
        vm = self.vm
        grid = self.grid
        nnodes = grid.nnodes
        with vm.phase("scatter"):
            partials = []
            for r in range(vm.p):
                parts = self.particles[r]
                acc = np.zeros((len(CHANNELS), nnodes))
                if parts.n:
                    nodes, values = deposition_entries(grid, parts)
                    flat = nodes.ravel()
                    vals = values.reshape(len(CHANNELS), -1)
                    for c in range(len(CHANNELS)):
                        acc[c] = np.bincount(flat, weights=vals[c], minlength=nnodes)
                partials.append(acc)
            vm.charge_ops("scatter", np.array([4.0 * p.n for p in self.particles]))
            # Global element-wise sum over all ranks' full-mesh copies:
            # every iteration moves the whole source array set.
            summed = vm.allreduce(partials, op="sum")[0]
        scale = 1.0 / (grid.dx * grid.dy)
        shaped = (summed * scale).reshape(len(CHANNELS), grid.ny, grid.nx)
        k = self.smoothing_passes
        self.fields.rho = binomial_smooth(shaped[0], k)
        self.fields.jx = binomial_smooth(shaped[1], k)
        self.fields.jy = binomial_smooth(shaped[2], k)
        self.fields.jz = binomial_smooth(shaped[3], k)

    def field_solve(self) -> None:
        """Partitioned update + global concatenation of the results."""
        vm = self.vm
        grid = self.grid
        with vm.phase("field"):
            # each rank updates m/p nodes...
            vm.charge_ops("field", np.full(vm.p, grid.nnodes / vm.p))
            self.solver.step(self.fields, self.dt)
            # ...then all ranks receive the full updated field arrays
            # (global concatenation, 6 components x m nodes).
            slices = np.array_split(self._field_node_values(), vm.p, axis=1)
            vm.allgather(list(slices))

    def _field_node_values(self) -> np.ndarray:
        f = self.fields
        return np.stack(
            [f.ex.ravel(), f.ey.ravel(), f.ez.ravel(), f.bx.ravel(), f.by.ravel(), f.bz.ravel()]
        )

    def gather_push(self) -> None:
        """Local interpolation and push — no communication at all."""
        vm = self.vm
        grid = self.grid
        node_values = self._field_node_values()
        with vm.phase("gather"):
            vm.charge_ops("gather", np.array([4.0 * p.n for p in self.particles]))
            eb = []
            for r in range(vm.p):
                parts = self.particles[r]
                nodes, weights = grid.cic_vertices_weights(parts.x, parts.y)
                eb.append(gather_from_node_values(node_values, nodes, weights))
        with vm.phase("push"):
            vm.charge_ops("push", np.array([float(p.n) for p in self.particles]))
            for r in range(vm.p):
                if self.particles[r].n:
                    boris_push(grid, self.particles[r], eb[r][:3], eb[r][3:], self.dt)

    def step(self) -> None:
        """One full iteration."""
        self.scatter()
        self.field_solve()
        self.gather_push()
        self.iteration += 1

    def all_particles(self) -> ParticleArray:
        """All particles concatenated in rank order."""
        return ParticleArray.concat(self.particles)

    def __repr__(self) -> str:
        return f"ReplicatedMeshPIC(p={self.vm.p}, grid={self.grid!r})"
