"""Checkpoint / restart of PIC simulation state.

Saves the complete physical state — particles (per rank), fields, grid
shape, iteration counter — to a single ``.npz`` file and restores it
into a :class:`~repro.pic.parallel.ParallelPIC` or
:class:`~repro.pic.sequential.SequentialPIC`.  Restart is exact: a run
that checkpoints at iteration ``k`` and resumes reproduces the
uninterrupted run bit-for-bit (modulo nothing: the steppers are
deterministic).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.mesh.fields import FieldState
from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray
from repro.util import require

__all__ = ["save_checkpoint", "load_checkpoint", "CheckpointData"]

_FIELD_NAMES = ("ex", "ey", "ez", "bx", "by", "bz", "jx", "jy", "jz", "rho")
_FORMAT_VERSION = 1


class CheckpointData:
    """In-memory form of a checkpoint (what :func:`load_checkpoint` returns)."""

    def __init__(
        self,
        grid: Grid2D,
        fields: FieldState,
        particles: list[ParticleArray],
        iteration: int,
    ) -> None:
        self.grid = grid
        self.fields = fields
        self.particles = particles
        self.iteration = iteration

    @property
    def nranks(self) -> int:
        """Number of per-rank particle sets stored."""
        return len(self.particles)

    def all_particles(self) -> ParticleArray:
        """All particles concatenated in rank order."""
        return ParticleArray.concat(self.particles)


def save_checkpoint(
    path: str | Path,
    grid: Grid2D,
    fields: FieldState,
    particles: list[ParticleArray],
    iteration: int,
) -> Path:
    """Write a checkpoint to ``path`` (``.npz`` appended if missing).

    ``particles`` is a list of per-rank sets (pass ``[parts]`` for a
    sequential run).
    """
    require(iteration >= 0, "iteration must be >= 0")
    require(len(particles) >= 1, "need at least one particle set")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    payload: dict[str, np.ndarray] = {
        "version": np.array([_FORMAT_VERSION]),
        "meta": np.array([grid.nx, grid.ny, iteration, len(particles)], dtype=np.int64),
        "extent": np.array([grid.lx, grid.ly]),
    }
    for name in _FIELD_NAMES:
        payload[f"field_{name}"] = getattr(fields, name)
    for r, parts in enumerate(particles):
        payload[f"rank{r}_matrix"] = parts.to_matrix()
    np.savez_compressed(path, **payload)
    return path


def load_checkpoint(path: str | Path) -> CheckpointData:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        version = int(data["version"][0])
        require(
            version == _FORMAT_VERSION,
            f"checkpoint version {version} not supported (expected {_FORMAT_VERSION})",
        )
        nx, ny, iteration, nranks = (int(v) for v in data["meta"])
        lx, ly = (float(v) for v in data["extent"])
        grid = Grid2D(nx, ny, lx=lx, ly=ly)
        fields = FieldState(*(data[f"field_{name}"].copy() for name in _FIELD_NAMES))
        particles = [
            ParticleArray.from_matrix(data[f"rank{r}_matrix"]) for r in range(nranks)
        ]
    return CheckpointData(grid, fields, particles, iteration)
