"""Exact-resume checkpoint / restart of simulation state (format v2).

A **v2 checkpoint** round-trips the *full* run state of a
:class:`~repro.pic.simulation.Simulation`, not just the physical state:

* physical state — per-rank :class:`~repro.particles.arrays.ParticleArray`
  matrices, the complete :class:`~repro.mesh.fields.FieldState`, grid
  geometry, and the iteration counter;
* machine state — the :class:`~repro.machine.virtual.VirtualMachine`'s
  per-rank clocks, compute/comm splits, per-phase time tables, per-phase
  :class:`~repro.machine.stats.CommStats`, and op counters;
* control state — the full :class:`~repro.pic.simulation.SimulationConfig`
  (including the machine model constants), the redistribution policy's
  internals (:class:`~repro.core.policies.DynamicSARPolicy` window and
  ``T_redistribution``), the decomposition's curve bounds (which adaptive
  rebalancing moves at runtime), the redistributor's build-time sort keys
  (which the incremental sort classifies against), the per-iteration
  record history, and the :class:`~repro.machine.trace.PhaseTrace` rows
  (so a resumed run's telemetry / ``repro report`` covers the full
  history, not just the post-resume tail).

The exact-resume contract (pinned by ``tests/test_resume_equivalence.py``
and DESIGN.md §5.2): a run checkpointed at iteration ``k`` via
``Simulation.checkpoint`` and resumed via ``Simulation.from_checkpoint``
produces a ``SimulationResult`` — virtual times, per-phase breakdowns,
scatter comm-stat series, redistribution schedule and costs — *identical*
to the uninterrupted run, and the physical state matches at atol=0.

Writes are crash-safe: the archive is written to a temporary file in the
target directory and atomically installed with :func:`os.replace`, so an
interrupted write never leaves a file that :func:`load_checkpoint`
accepts.  Loading validates the format marker, version, and key set, and
raises :class:`CheckpointError` with the expected-vs-found key diff on
corrupt or truncated archives.

**v1 compatibility**: format-v1 files (particles / fields / iteration
only, written before this module serialized run state) still load — with
a :class:`UserWarning` — as a :class:`CheckpointData` whose ``run_state``
is ``None``.  They cannot seed ``Simulation.from_checkpoint``, which
needs the full v2 payload.
"""

from __future__ import annotations

import json
import warnings
import zipfile
from pathlib import Path

import numpy as np

from repro.mesh.fields import FieldState
from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray
from repro.util import require
from repro.util.atomic_io import atomic_writer
from repro.util.errors import CheckpointError

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointData",
    "CheckpointError",
]

_FIELD_NAMES = ("ex", "ey", "ez", "bx", "by", "bz", "jx", "jy", "jz", "rho")
_FORMAT_VERSION = 2
_MAGIC = "repro-checkpoint"


class CheckpointData:
    """In-memory form of a checkpoint (what :func:`load_checkpoint` returns).

    ``run_state`` carries the v2 exact-resume payload (config, machine,
    policy, records, decomposition bounds) as a JSON-compatible dict;
    it is ``None`` for v1 files.  ``sort_keys`` are the redistributor's
    per-rank build-time keys (``None`` when the run had no redistributor
    or the file is v1).
    """

    def __init__(
        self,
        grid: Grid2D,
        fields: FieldState,
        particles: list[ParticleArray],
        iteration: int,
        *,
        version: int = _FORMAT_VERSION,
        run_state: dict | None = None,
        sort_keys: list[np.ndarray] | None = None,
    ) -> None:
        self.grid = grid
        self.fields = fields
        self.particles = particles
        self.iteration = iteration
        self.version = version
        self.run_state = run_state
        self.sort_keys = sort_keys

    @property
    def nranks(self) -> int:
        """Number of per-rank particle sets stored."""
        return len(self.particles)

    def all_particles(self) -> ParticleArray:
        """All particles concatenated in rank order."""
        return ParticleArray.concat(self.particles)


def _resolve_path(path: str | Path) -> Path:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def save_checkpoint(
    path: str | Path,
    grid: Grid2D,
    fields: FieldState,
    particles: list[ParticleArray],
    iteration: int,
    *,
    run_state: dict | None = None,
    sort_keys: list[np.ndarray] | None = None,
) -> Path:
    """Write a format-v2 checkpoint to ``path`` (``.npz`` appended if missing).

    ``particles`` is a list of per-rank sets (pass ``[parts]`` for a
    sequential run).  ``run_state`` is the JSON-compatible exact-resume
    payload assembled by ``Simulation.checkpoint``; ``sort_keys`` are the
    redistributor's per-rank build-time keys.  Both are optional so the
    low-level physical-state round trip keeps working standalone.

    The write is atomic: the archive lands in a temporary file next to
    ``path`` and is installed with :func:`os.replace`, so a crash mid-write
    leaves either the previous checkpoint or a stray ``.tmp`` file — never
    a truncated archive under the target name.
    """
    require(iteration >= 0, "iteration must be >= 0")
    require(len(particles) >= 1, "need at least one particle set")
    if sort_keys is not None:
        require(
            len(sort_keys) == len(particles),
            "sort_keys must have one entry per particle set",
        )
    path = _resolve_path(path)
    payload: dict[str, np.ndarray] = {
        "format": np.array([_MAGIC]),
        "version": np.array([_FORMAT_VERSION]),
        "meta": np.array([grid.nx, grid.ny, iteration, len(particles)], dtype=np.int64),
        "extent": np.array([grid.lx, grid.ly]),
        "state_json": np.array(
            [json.dumps({"run_state": run_state, "has_sort_keys": sort_keys is not None})]
        ),
    }
    for name in _FIELD_NAMES:
        payload[f"field_{name}"] = getattr(fields, name)
    for r, parts in enumerate(particles):
        payload[f"rank{r}_matrix"] = parts.to_matrix()
    if sort_keys is not None:
        for r, keys in enumerate(sort_keys):
            payload[f"rank{r}_sortkeys"] = np.asarray(keys)
    with atomic_writer(path, "wb") as fh:
        np.savez_compressed(fh, **payload)
    return path


def _expected_keys(nranks: int, has_sort_keys: bool) -> set[str]:
    keys = {"format", "version", "meta", "extent", "state_json"}
    keys.update(f"field_{name}" for name in _FIELD_NAMES)
    keys.update(f"rank{r}_matrix" for r in range(nranks))
    if has_sort_keys:
        keys.update(f"rank{r}_sortkeys" for r in range(nranks))
    return keys


def _require_keys(path: Path, found: set[str], expected: set[str]) -> None:
    missing = sorted(expected - found)
    if missing:
        raise CheckpointError(
            f"{path} is not a complete repro checkpoint: missing keys {missing} "
            f"(found {sorted(found)})"
        )


def load_checkpoint(path: str | Path, *, strict: bool = False) -> CheckpointData:
    """Read a checkpoint written by :func:`save_checkpoint`.

    With ``strict=True`` (what ``--guards strict`` runs use) legacy
    format-v1 files raise :class:`CheckpointError` instead of loading
    with a :class:`UserWarning` — a degraded restore is an error, not a
    caveat, when integrity guarantees were requested.

    Raises
    ------
    FileNotFoundError
        ``path`` (with or without the ``.npz`` suffix) does not exist.
    CheckpointError
        The file exists but is not a valid repro checkpoint: not an npz
        archive, truncated, an unsupported version, missing required
        keys (the message lists the expected-vs-found diff), or a
        format-v1 file under ``strict=True``.
    """
    path = Path(path)
    if not path.exists():
        resolved = _resolve_path(path)
        if resolved.exists():
            path = resolved
        else:
            raise FileNotFoundError(
                f"checkpoint file not found: {path}"
                + (f" (also tried {resolved})" if resolved != path else "")
            )
    try:
        archive = np.load(path)
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
        raise CheckpointError(
            f"{path} is not a repro checkpoint (.npz archive): {exc}"
        ) from exc
    if not hasattr(archive, "files"):  # a bare .npy array, not an archive
        raise CheckpointError(f"{path} is not a repro checkpoint (.npz archive)")
    with archive as data:
        found = set(data.files)
        if "version" not in found:
            raise CheckpointError(
                f"{path} is not a repro checkpoint: no 'version' key "
                f"(found {sorted(found)})"
            )
        version = int(data["version"][0])
        if version == 1:
            if strict:
                raise CheckpointError(
                    f"{path} is a format-v1 checkpoint (particles/fields only); "
                    "strict guards refuse the degraded load — re-save the run "
                    "with Simulation.checkpoint to upgrade to v2"
                )
            return _load_v1(path, data, found)
        if version != _FORMAT_VERSION:
            raise CheckpointError(
                f"{path}: checkpoint version {version} not supported "
                f"(this build reads versions 1 and {_FORMAT_VERSION})"
            )
        magic = str(data["format"][0]) if "format" in found else None
        if magic != _MAGIC:
            raise CheckpointError(
                f"{path} is not a repro checkpoint: format marker is {magic!r}, "
                f"expected {_MAGIC!r}"
            )
        _require_keys(path, found, _expected_keys(0, False))
        try:
            state = json.loads(str(data["state_json"][0]))
            has_sort_keys = bool(state["has_sort_keys"])
            run_state = state["run_state"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise CheckpointError(f"{path}: corrupt state_json payload: {exc}") from exc
        nx, ny, iteration, nranks = (int(v) for v in data["meta"])
        _require_keys(path, found, _expected_keys(nranks, has_sort_keys))
        lx, ly = (float(v) for v in data["extent"])
        grid = Grid2D(nx, ny, lx=lx, ly=ly)
        fields = FieldState(*(data[f"field_{name}"].copy() for name in _FIELD_NAMES))
        particles = [
            ParticleArray.from_matrix(data[f"rank{r}_matrix"]) for r in range(nranks)
        ]
        sort_keys = None
        if has_sort_keys:
            sort_keys = [data[f"rank{r}_sortkeys"].copy() for r in range(nranks)]
    return CheckpointData(
        grid,
        fields,
        particles,
        iteration,
        version=version,
        run_state=run_state,
        sort_keys=sort_keys,
    )


def _load_v1(path: Path, data, found: set[str]) -> CheckpointData:
    """Read a legacy v1 archive: physical state only, with a warning."""
    warnings.warn(
        f"{path} is a format-v1 checkpoint: only particles/fields/iteration are "
        "stored, so it cannot seed an exact resume (Simulation.from_checkpoint). "
        "Re-save with Simulation.checkpoint to upgrade to v2.",
        UserWarning,
        stacklevel=3,
    )
    v1_keys = {"version", "meta", "extent"} | {f"field_{n}" for n in _FIELD_NAMES}
    _require_keys(path, found, v1_keys)
    nx, ny, iteration, nranks = (int(v) for v in data["meta"])
    _require_keys(path, found, v1_keys | {f"rank{r}_matrix" for r in range(nranks)})
    lx, ly = (float(v) for v in data["extent"])
    grid = Grid2D(nx, ny, lx=lx, ly=ly)
    fields = FieldState(*(data[f"field_{name}"].copy() for name in _FIELD_NAMES))
    particles = [
        ParticleArray.from_matrix(data[f"rank{r}_matrix"]) for r in range(nranks)
    ]
    return CheckpointData(grid, fields, particles, iteration, version=1)
