r"""Charge-conserving current deposition (Umeda's zigzag scheme).

Plain CIC current deposition (velocity-weighted charge, as used in the
1996 era and in :mod:`repro.pic.deposition`) does not satisfy the
discrete continuity equation, so ``div E - rho`` drifts and must be
cleaned (Marder, :mod:`repro.pic.maxwell`).  The zigzag scheme of Umeda
et al. (Comput. Phys. Commun. 156, 2003) computes J directly from each
particle's motion segment ``(x_old) -> (x_new)`` such that

.. math::

    (rho^{new} - rho^{old}) / dt + div J = 0

holds *exactly*, where rho is the CIC (bilinear) node density and the
divergence is the staggered difference ``(Jx[i,j] - Jx[i-1,j])/dx +
(Jy[i,j] - Jy[i,j-1])/dy`` with ``Jx[i,j]`` living on the x-face
``(i+1/2, j)`` and ``Jy[i,j]`` on the y-face ``(i, j+1/2)``.

The trajectory is split at the cell boundary (the *relay point*) into at
most two straight sub-segments, each inside one cell; a segment in cell
``(i, j)`` deposits

.. math::

    Jx(i+1/2, j)   +=  F_x (1 - W_y), \qquad
    Jx(i+1/2, j+1) +=  F_x W_y

with flux ``F_x = q (x_b - x_a) / dt`` and transverse weight
``W_y = (y_a + y_b) / (2 dy) - j`` (symmetrically for ``Jy``).

The kernel is standalone (property-tested for exact continuity) and can
replace the plain current deposition in custom steppers; the default
steppers keep the paper-era kernel + Marder cleaning so the reproduction
exercises the same code path as the original.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.grid import Grid2D
from repro.util import require

__all__ = ["deposit_current_zigzag", "continuity_residual"]


def deposit_current_zigzag(
    grid: Grid2D,
    x_old: np.ndarray,
    y_old: np.ndarray,
    x_new: np.ndarray,
    y_new: np.ndarray,
    charge: np.ndarray,
    dt: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Deposit face currents from per-particle motion segments.

    Parameters
    ----------
    grid:
        Periodic geometry.  Each particle must move less than one cell
        per step (guaranteed under the CFL limit since |v| < c = 1).
    x_old, y_old, x_new, y_new:
        Positions before and after the push (wrapped or not; the
        shortest periodic displacement is used).
    charge:
        Per-particle charge (``w * q``).
    dt:
        Time step.

    Returns
    -------
    (jx, jy):
        Face-current arrays of shape ``(ny, nx)`` in density units
        (divided by the cell area), satisfying exact discrete continuity
        with the CIC charge density (see :func:`continuity_residual`).
    """
    require(dt > 0, "dt must be > 0")
    x_old = np.asarray(x_old, float)
    y_old = np.asarray(y_old, float)
    x_new = np.asarray(x_new, float)
    y_new = np.asarray(y_new, float)
    charge = np.asarray(charge, float)
    n = x_old.shape[0]
    require(
        all(a.shape == (n,) for a in (y_old, x_new, y_new, charge)),
        "all position/charge arrays must share one length",
    )

    # Unwrapped coordinates: wrapped start + shortest periodic move.
    x1, y1 = grid.wrap_positions(x_old, y_old)
    dx_move = np.mod(x_new - x_old + grid.lx / 2, grid.lx) - grid.lx / 2
    dy_move = np.mod(y_new - y_old + grid.ly / 2, grid.ly) - grid.ly / 2
    if n and (np.abs(dx_move).max() >= grid.dx or np.abs(dy_move).max() >= grid.dy):
        raise ValueError("zigzag deposition requires moves of less than one cell per step")
    x2 = x1 + dx_move
    y2 = y1 + dy_move

    c1x = np.clip(np.floor(x1 / grid.dx).astype(np.int64), 0, grid.nx - 1)
    c1y = np.clip(np.floor(y1 / grid.dy).astype(np.int64), 0, grid.ny - 1)
    c2x = np.floor(x2 / grid.dx).astype(np.int64)  # may be -1 or nx (unwrapped)
    c2y = np.floor(y2 / grid.dy).astype(np.int64)

    # Umeda's relay point: shared boundary when the cells differ along
    # an axis, else the midpoint.
    def relay(a1, a2, c1, c2, d):
        boundary = np.maximum(c1, c2) * d  # the face between the two cells
        mid = 0.5 * (a1 + a2)
        return np.where(c1 == c2, mid, boundary)

    xr = relay(x1, x2, c1x, c2x, grid.dx)
    yr = relay(y1, y2, c1y, c2y, grid.dy)

    jx = np.zeros(grid.shape)
    jy = np.zeros(grid.shape)
    inv_area = 1.0 / (grid.dx * grid.dy)
    flat_jx = jx.reshape(-1)
    flat_jy = jy.reshape(-1)

    def deposit_segment(xa, ya, xb, yb, cx, cy):
        """Deposit one straight sub-segment lying inside cell (cx, cy)."""
        fx = charge * (xb - xa) / dt
        fy = charge * (yb - ya) / dt
        wy = 0.5 * (ya + yb) / grid.dy - cy  # transverse weight in [0, 1]
        wx = 0.5 * (xa + xb) / grid.dx - cx
        cxw = np.mod(cx, grid.nx)
        cyw = np.mod(cy, grid.ny)
        cyw1 = np.mod(cy + 1, grid.ny)
        cxw1 = np.mod(cx + 1, grid.nx)
        # Jx on faces (cx + 1/2, cy) and (cx + 1/2, cy + 1)
        np.add.at(flat_jx, cyw * grid.nx + cxw, fx * (1.0 - wy) * inv_area)
        np.add.at(flat_jx, cyw1 * grid.nx + cxw, fx * wy * inv_area)
        # Jy on faces (cx, cy + 1/2) and (cx + 1, cy + 1/2)
        np.add.at(flat_jy, cyw * grid.nx + cxw, fy * (1.0 - wx) * inv_area)
        np.add.at(flat_jy, cyw * grid.nx + cxw1, fy * wx * inv_area)

    deposit_segment(x1, y1, xr, yr, c1x, c1y)
    deposit_segment(xr, yr, x2, y2, c2x, c2y)
    return jx, jy


def continuity_residual(
    grid: Grid2D,
    rho_old: np.ndarray,
    rho_new: np.ndarray,
    jx: np.ndarray,
    jy: np.ndarray,
    dt: float,
) -> np.ndarray:
    """``(rho_new - rho_old)/dt + div J`` with the staggered divergence.

    ``rho_*`` are CIC node densities
    (:func:`repro.pic.deposition.deposit_charge_current` channel 0);
    identically ~0 (machine precision) for zigzag-deposited currents.
    """
    div = (jx - np.roll(jx, 1, axis=1)) / grid.dx + (jy - np.roll(jy, 1, axis=0)) / grid.dy
    return (np.asarray(rho_new) - np.asarray(rho_old)) / dt + div
