"""High-level simulation driver: configuration, policies, history.

:class:`Simulation` assembles the whole stack for one experiment — the
workload (paper's uniform / irregular distributions), the machine, the
mesh decomposition, the particle distribution, the parallel PIC stepper,
and a redistribution policy — then runs it while recording the
per-iteration series the paper plots (execution time, scatter-phase max
bytes and max messages) and the end-of-run totals its tables report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.partitioner import ParticlePartitioner
from repro.core.policies import RedistributionPolicy, make_policy
from repro.core.redistribution import Redistributor
from repro.machine.model import MachineModel
from repro.machine.virtual import VirtualMachine
from repro.mesh.decomposition import CurveBlockDecomposition, MeshDecomposition, balanced_splits
from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray
from repro.particles.init import gaussian_blob, ring_distribution, two_stream, uniform_plasma
from repro.pic.parallel import ParallelPIC
from repro.util import require

__all__ = ["SimulationConfig", "IterationRecord", "SimulationResult", "Simulation"]

_DISTRIBUTIONS = {
    "uniform": uniform_plasma,
    "irregular": gaussian_blob,
    "two_stream": two_stream,
    "ring": ring_distribution,
}


@dataclass
class SimulationConfig:
    """Everything that defines one experiment run.

    Parameters mirror the paper's sweeps: mesh size, particle count,
    spatial distribution, indexing scheme, processors, and the
    redistribution policy.
    """

    nx: int = 64
    ny: int = 32
    nparticles: int = 8192
    p: int = 8
    distribution: str = "uniform"  #: uniform | irregular | two_stream | ring
    scheme: str = "hilbert"  #: indexing scheme name
    policy: str | RedistributionPolicy = "static"  #: static | periodic:<k> | dynamic
    movement: str = "lagrangian"  #: lagrangian | eulerian
    partitioning: str = "independent"  #: independent | grid | particle | adaptive
    ghost_table: str = "hash"  #: hash | direct
    field_solver: str = "maxwell"  #: maxwell | electrostatic (era kernel only)
    kernel: str = "era"  #: era (CIC + collocated FDTD, the paper) | modern (Yee + zigzag)
    engine: str = "flat"  #: flat (pooled kernels) | looped (per-rank loops; era kernel only)
    model: MachineModel = field(default_factory=MachineModel.cm5)
    dt: float | None = None
    seed: int = 0
    nbuckets: int = 16
    vth: float = 0.05  #: thermal momentum spread of the sampler
    density: float = 0.01  #: mean charge density (sets the plasma frequency)

    def __post_init__(self) -> None:
        require(self.distribution in _DISTRIBUTIONS, f"unknown distribution {self.distribution!r}")
        require(
            self.partitioning in ("independent", "grid", "particle", "adaptive"),
            f"unknown partitioning {self.partitioning!r}",
        )
        require(self.movement in ("lagrangian", "eulerian"), f"unknown movement {self.movement!r}")
        if self.partitioning == "adaptive":
            require(
                self.movement == "eulerian",
                "adaptive partitioning rebalances cell ownership and requires eulerian movement",
            )
        require(self.kernel in ("era", "modern"), f"unknown kernel {self.kernel!r}")
        require(self.engine in ("looped", "flat"), f"unknown engine {self.engine!r}")
        if self.kernel == "modern":
            require(
                self.engine == "flat",
                "the modern kernel has no looped/flat engine split",
            )
            require(
                self.movement == "lagrangian" and self.partitioning == "independent",
                "the modern kernel supports lagrangian movement with independent partitioning",
            )
            require(
                self.field_solver == "maxwell",
                "the modern kernel has its own (Yee) field solve",
            )
        require(self.nparticles >= self.p, "need at least one particle per rank")


@dataclass
class IterationRecord:
    """Per-iteration observables (the series of Figures 17–19)."""

    iteration: int
    time: float  #: virtual seconds of this iteration (excl. redistribution)
    scatter_max_bytes: int  #: max data sent/recv by any rank in scatter
    scatter_max_msgs: int  #: max messages sent/recv by any rank in scatter
    redistributed: bool  #: whether a redistribution followed this iteration
    redistribution_cost: float  #: virtual seconds of that redistribution


@dataclass
class SimulationResult:
    """End-of-run summary plus the per-iteration history."""

    config: SimulationConfig
    records: list[IterationRecord]
    total_time: float  #: virtual execution time incl. redistributions
    computation_time: float  #: max-over-ranks pure compute time
    n_redistributions: int
    redistribution_time: float  #: total virtual seconds spent redistributing
    phase_breakdown: dict[str, float]  #: per-phase max-over-ranks time

    @property
    def overhead(self) -> float:
        """Execution time minus computation time (paper Figs 21–22)."""
        return self.total_time - self.computation_time

    @property
    def iteration_times(self) -> np.ndarray:
        """Per-iteration execution-time series (paper Fig 17)."""
        return np.array([r.time for r in self.records])

    @property
    def scatter_max_bytes(self) -> np.ndarray:
        """Per-iteration scatter max-bytes series (paper Fig 18)."""
        return np.array([r.scatter_max_bytes for r in self.records], dtype=np.int64)

    @property
    def scatter_max_msgs(self) -> np.ndarray:
        """Per-iteration scatter max-messages series (paper Fig 19)."""
        return np.array([r.scatter_max_msgs for r in self.records], dtype=np.int64)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable summary plus per-iteration series."""
        cfg = self.config
        return {
            "config": {
                "nx": cfg.nx,
                "ny": cfg.ny,
                "nparticles": cfg.nparticles,
                "p": cfg.p,
                "distribution": cfg.distribution,
                "scheme": cfg.scheme,
                "policy": cfg.policy if isinstance(cfg.policy, str) else type(cfg.policy).__name__,
                "movement": cfg.movement,
                "partitioning": cfg.partitioning,
                "kernel": cfg.kernel,
                "seed": cfg.seed,
                "machine": cfg.model.name,
            },
            "totals": {
                "iterations": len(self.records),
                "total_time": self.total_time,
                "computation_time": self.computation_time,
                "overhead": self.overhead,
                "n_redistributions": self.n_redistributions,
                "redistribution_time": self.redistribution_time,
            },
            "phase_breakdown": dict(self.phase_breakdown),
            "series": {
                "iteration_time": self.iteration_times.tolist(),
                "scatter_max_bytes": self.scatter_max_bytes.tolist(),
                "scatter_max_msgs": self.scatter_max_msgs.tolist(),
                "redistributed": [r.redistributed for r in self.records],
            },
        }

    def save_json(self, path) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")


class Simulation:
    """Assembles and runs one configured experiment."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.grid = Grid2D(config.nx, config.ny)
        sampler = _DISTRIBUTIONS[config.distribution]
        self.initial_particles = sampler(
            self.grid,
            config.nparticles,
            vth=config.vth,
            density=config.density,
            rng=config.seed,
        )
        self.vm = VirtualMachine(config.p, config.model)
        self.partitioner = ParticlePartitioner(self.grid, config.scheme)
        self.decomp = self._build_decomposition()
        local = self._initial_assignment()
        self.redistributor: Redistributor | None = None
        self.rebalancer = None
        if config.partitioning == "adaptive":
            from repro.core.adaptive import AdaptiveMeshRebalancer

            self.rebalancer = AdaptiveMeshRebalancer(self.grid, config.scheme)
        self.policy = make_policy(config.policy)
        if config.movement == "lagrangian":
            self.redistributor = Redistributor(self.partitioner, nbuckets=config.nbuckets)
            # Measure the setup distribution on the machine to seed the
            # dynamic policy's T_redistribution, then reset the clock so
            # run time starts at the first iteration (as in the paper).
            result = self.redistributor.initialize(self.vm, local)
            local = result.particles
            self._setup_cost = result.cost
            if hasattr(self.policy, "record_redistribution"):
                self.policy.record_redistribution(-1, result.cost)
            self.vm.clocks[:] = 0.0
            self.vm.compute_time[:] = 0.0
            self.vm.comm_time[:] = 0.0
            self.vm.phase_time.clear()
            self.vm.stats.reset()
            self.vm.ops.reset()
        else:
            self._setup_cost = 0.0
        if config.kernel == "modern":
            from repro.pic.parallel_yee import ParallelYeePIC

            self.pic = ParallelYeePIC(
                self.vm,
                self.grid,
                self.decomp,
                local,
                dt=config.dt,
                ghost_table=config.ghost_table,
            )
        else:
            self.pic = ParallelPIC(
                self.vm,
                self.grid,
                self.decomp,
                local,
                dt=config.dt,
                ghost_table=config.ghost_table,
                movement=config.movement,
                field_solver=config.field_solver,
                engine=config.engine,
            )

    # ------------------------------------------------------------------
    def _build_decomposition(self) -> MeshDecomposition:
        cfg = self.config
        if cfg.partitioning in ("independent", "grid", "adaptive"):
            return CurveBlockDecomposition(self.grid, cfg.p, cfg.scheme)
        # particle partitioning: mesh splits follow particle quantiles
        # along the curve, so cells per rank are unbalanced.
        keys = self.partitioner.particle_keys(self.initial_particles)
        order = np.sort(keys)
        quantile_bounds = balanced_splits(order.size, cfg.p)
        bounds = np.empty(cfg.p + 1, dtype=np.int64)
        bounds[0] = 0
        bounds[-1] = self.grid.ncells
        for r in range(1, cfg.p):
            idx = int(quantile_bounds[r])
            bounds[r] = int(order[min(idx, order.size - 1)])
        bounds = np.maximum.accumulate(bounds)
        np.clip(bounds, 0, self.grid.ncells, out=bounds)
        return CurveBlockDecomposition(self.grid, cfg.p, cfg.scheme, bounds=bounds)

    def _initial_assignment(self) -> list[ParticleArray]:
        cfg = self.config
        if cfg.partitioning == "grid" or cfg.movement == "eulerian":
            # Particles live with the owner of their cell.
            cells = self.grid.cell_id_of_positions(
                self.initial_particles.x, self.initial_particles.y
            )
            owners = self.decomp.owner_of_cells(cells)
            return [
                self.initial_particles.take(np.flatnonzero(owners == r))
                for r in range(cfg.p)
            ]
        return self.partitioner.initial_partition(self.initial_particles, cfg.p)

    # ------------------------------------------------------------------
    def run(self, niters: int) -> SimulationResult:
        """Run ``niters`` iterations under the configured policy."""
        require(niters >= 0, "niters must be >= 0")
        vm = self.vm
        records: list[IterationRecord] = []
        redis_time = 0.0
        n_redis = 0
        for it in range(niters):
            t0 = vm.elapsed()
            self.pic.step()
            t_iter = vm.elapsed() - t0
            epoch = vm.stats.snapshot_epoch()
            scatter = epoch.get("scatter")
            max_bytes = scatter.max_bytes if scatter is not None else 0
            max_msgs = scatter.max_msgs if scatter is not None else 0
            self.policy.record_iteration(it, t_iter)
            redistributed = False
            cost = 0.0
            if (
                self.redistributor is not None
                and self.config.movement == "lagrangian"
                and self.policy.should_redistribute(it)
            ):
                result = self.redistributor.redistribute(vm, self.pic.particles)
                self.pic.particles = result.particles
                cost = result.cost
                redis_time += cost
                n_redis += 1
                redistributed = True
                self.policy.record_redistribution(it, cost)
                vm.stats.snapshot_epoch()  # keep redistribution comm out of scatter series
            elif self.rebalancer is not None and self.policy.should_redistribute(it):
                cost = self.rebalancer.rebalance(self.pic)
                redis_time += cost
                n_redis += 1
                redistributed = True
                self.policy.record_redistribution(it, cost)
                vm.stats.snapshot_epoch()
            records.append(
                IterationRecord(it, t_iter, max_bytes, max_msgs, redistributed, cost)
            )
        return SimulationResult(
            config=self.config,
            records=records,
            total_time=vm.elapsed(),
            computation_time=float(vm.compute_time.max()),
            n_redistributions=n_redis,
            redistribution_time=redis_time,
            phase_breakdown=vm.phase_breakdown(),
        )
