"""High-level simulation driver: configuration, policies, history.

:class:`Simulation` assembles the whole stack for one experiment — the
workload (paper's uniform / irregular distributions), the machine, the
mesh decomposition, the particle distribution, the parallel PIC stepper,
and a redistribution policy — then runs it while recording the
per-iteration series the paper plots (execution time, scatter-phase max
bytes and max messages) and the end-of-run totals its tables report.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields as dataclass_fields, replace
from pathlib import Path

import numpy as np

from repro.core.partitioner import ParticlePartitioner
from repro.core.policies import (
    RedistributionPolicy,
    make_policy,
    policy_from_state,
    policy_spec,
)
from repro.core.redistribution import Redistributor
from repro.machine.faults import FaultInjector, FaultPlan
from repro.machine.model import MachineModel
from repro.machine.trace import PhaseTrace
from repro.machine.virtual import VirtualMachine
from repro.mesh.decomposition import CurveBlockDecomposition, MeshDecomposition, balanced_splits
from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray
from repro.particles.init import gaussian_blob, ring_distribution, two_stream, uniform_plasma
from repro.pic.checkpoint import CheckpointData, CheckpointError, load_checkpoint, save_checkpoint
from repro.pic.parallel import ParallelPIC
from repro.util import require
from repro.util.errors import RankFailure
from repro.util.guards import GUARD_MODES, InvariantGuard

__all__ = [
    "SimulationConfig",
    "IterationRecord",
    "SimulationResult",
    "Simulation",
    "config_to_dict",
    "config_from_dict",
]

_DISTRIBUTIONS = {
    "uniform": uniform_plasma,
    "irregular": gaussian_blob,
    "two_stream": two_stream,
    "ring": ring_distribution,
}


@dataclass
class SimulationConfig:
    """Everything that defines one experiment run.

    Parameters mirror the paper's sweeps: mesh size, particle count,
    spatial distribution, indexing scheme, processors, and the
    redistribution policy.
    """

    nx: int = 64
    ny: int = 32
    nparticles: int = 8192
    p: int = 8
    distribution: str = "uniform"  #: uniform | irregular | two_stream | ring
    scheme: str = "hilbert"  #: indexing scheme name
    policy: str | RedistributionPolicy = "static"  #: any registered spec, e.g. static | periodic:<k> | dynamic | sar-ewma | costmodel:horizon=<n> | imbalance | planner
    movement: str = "lagrangian"  #: lagrangian | eulerian
    partitioning: str = "independent"  #: independent | grid | particle | adaptive
    ghost_table: str = "hash"  #: hash | direct
    field_solver: str = "maxwell"  #: maxwell | electrostatic (era kernel only)
    kernel: str = "era"  #: era (CIC + collocated FDTD, the paper) | modern (Yee + zigzag)
    engine: str = "flat"  #: flat (pooled kernels) | looped (per-rank loops; era kernel only)
    model: MachineModel = field(default_factory=MachineModel.cm5)
    dt: float | None = None
    seed: int = 0
    nbuckets: int = 16
    vth: float = 0.05  #: thermal momentum spread of the sampler
    density: float = 0.01  #: mean charge density (sets the plasma frequency)
    guards: str = "off"  #: invariant-guard severity: off | warn | strict

    def __post_init__(self) -> None:
        require(
            self.guards in GUARD_MODES,
            f"guards must be one of {GUARD_MODES}, got {self.guards!r}",
        )
        require(self.distribution in _DISTRIBUTIONS, f"unknown distribution {self.distribution!r}")
        require(
            self.partitioning in ("independent", "grid", "particle", "adaptive"),
            f"unknown partitioning {self.partitioning!r}",
        )
        require(self.movement in ("lagrangian", "eulerian"), f"unknown movement {self.movement!r}")
        if self.partitioning == "adaptive":
            require(
                self.movement == "eulerian",
                "adaptive partitioning rebalances cell ownership and requires eulerian movement",
            )
        require(self.kernel in ("era", "modern"), f"unknown kernel {self.kernel!r}")
        require(self.engine in ("looped", "flat"), f"unknown engine {self.engine!r}")
        if self.kernel == "modern":
            require(
                self.engine == "flat",
                "the modern kernel has no looped/flat engine split",
            )
            require(
                self.movement == "lagrangian" and self.partitioning == "independent",
                "the modern kernel supports lagrangian movement with independent partitioning",
            )
            require(
                self.field_solver == "maxwell",
                "the modern kernel has its own (Yee) field solve",
            )
        require(self.nparticles >= self.p, "need at least one particle per rank")
        if isinstance(self.policy, str):
            # Validate the spec at config time (the registry raises on
            # unknown names/parameters), so a typo'd --policy fails here
            # rather than deep inside Simulation construction.
            make_policy(self.policy)


def config_to_dict(cfg: SimulationConfig, *, full_model: bool = False) -> dict:
    """JSON-serializable form of a :class:`SimulationConfig`.

    Every field round-trips through :func:`config_from_dict`: the policy
    is rendered as its canonical spec string and the machine model as its
    preset name (or, with ``full_model=True``, as the full constants dict
    checkpoints embed so custom models survive too).
    """
    out = {}
    for f in dataclass_fields(SimulationConfig):
        value = getattr(cfg, f.name)
        if f.name == "policy":
            value = policy_spec(value)
        elif f.name == "model":
            if full_model:
                value = value.to_dict()
            else:
                # Preset name when it resolves back to this exact model;
                # full constants dict otherwise (custom models must still
                # replay via --config).
                try:
                    is_preset = MachineModel.by_name(value.name) == value
                except ValueError:
                    is_preset = False
                value = value.name if is_preset else value.to_dict()
        out[f.name] = value
    return out


def config_from_dict(data: dict) -> SimulationConfig:
    """Build a :class:`SimulationConfig` from :func:`config_to_dict` output.

    ``model`` may be a preset name string or a full constants dict.
    Unknown keys raise ``ValueError`` naming them.
    """
    data = dict(data)
    valid = {f.name for f in dataclass_fields(SimulationConfig)}
    unknown = set(data) - valid
    if unknown:
        raise ValueError(f"unknown config keys: {sorted(unknown)}")
    model = data.pop("model", None)
    if isinstance(model, str):
        data["model"] = MachineModel.by_name(model)
    elif isinstance(model, dict):
        data["model"] = MachineModel.from_dict(model)
    elif model is not None:
        data["model"] = model
    return SimulationConfig(**data)


@dataclass
class IterationRecord:
    """Per-iteration observables (the series of Figures 17–19)."""

    iteration: int
    time: float  #: virtual seconds of this iteration (excl. redistribution)
    scatter_max_bytes: int  #: max data sent/recv by any rank in scatter
    scatter_max_msgs: int  #: max messages sent/recv by any rank in scatter
    redistributed: bool  #: whether a redistribution followed this iteration
    redistribution_cost: float  #: virtual seconds of that redistribution


@dataclass
class SimulationResult:
    """End-of-run summary plus the per-iteration history."""

    config: SimulationConfig
    records: list[IterationRecord]
    total_time: float  #: virtual execution time incl. redistributions
    computation_time: float  #: max-over-ranks pure compute time
    n_redistributions: int
    redistribution_time: float  #: total virtual seconds spent redistributing
    phase_breakdown: dict[str, float]  #: per-phase max-over-ranks time
    n_recoveries: int = 0  #: rank failures recovered from
    recovery_time: float = 0.0  #: virtual seconds spent detecting + recovering
    final_state: dict | None = None  #: physics summary (Simulation.final_state_summary)
    trace: PhaseTrace | None = None  #: per-iteration phase profile (always recorded)
    telemetry: dict | None = None  #: final metric aggregates (None = telemetry off)
    degraded: dict | None = None  #: multicore-fallback marker (None = no fallback)
    correlation: dict | None = None  #: batch identity stamp (None = standalone run)

    @property
    def overhead(self) -> float:
        """Execution time minus computation time (paper Figs 21–22)."""
        return self.total_time - self.computation_time

    @property
    def iteration_times(self) -> np.ndarray:
        """Per-iteration execution-time series (paper Fig 17)."""
        return np.array([r.time for r in self.records])

    @property
    def scatter_max_bytes(self) -> np.ndarray:
        """Per-iteration scatter max-bytes series (paper Fig 18)."""
        return np.array([r.scatter_max_bytes for r in self.records], dtype=np.int64)

    @property
    def scatter_max_msgs(self) -> np.ndarray:
        """Per-iteration scatter max-messages series (paper Fig 19)."""
        return np.array([r.scatter_max_msgs for r in self.records], dtype=np.int64)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable summary plus per-iteration series.

        The ``config`` block is the complete :class:`SimulationConfig`
        (via :func:`config_to_dict`), so a saved run's config feeds back
        through ``repro run --config`` to an identical run.

        With telemetry enabled a ``telemetry`` block of final metric
        aggregates is appended; with telemetry off the output is
        byte-identical to a pre-telemetry run (the zero-cost contract).
        """
        out = {
            "config": config_to_dict(self.config),
            "totals": {
                "iterations": len(self.records),
                "total_time": self.total_time,
                "computation_time": self.computation_time,
                "overhead": self.overhead,
                "n_redistributions": self.n_redistributions,
                "redistribution_time": self.redistribution_time,
                "n_recoveries": self.n_recoveries,
                "recovery_time": self.recovery_time,
            },
            "final_state": self.final_state,
            "phase_breakdown": dict(self.phase_breakdown),
            "series": {
                "iteration_time": self.iteration_times.tolist(),
                "scatter_max_bytes": self.scatter_max_bytes.tolist(),
                "scatter_max_msgs": self.scatter_max_msgs.tolist(),
                "redistributed": [r.redistributed for r in self.records],
            },
        }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        if self.degraded is not None:
            # only present on fallback runs, so untouched configurations
            # keep byte-identical output (zero-cost contract)
            out["degraded"] = self.degraded
        if self.correlation is not None:
            # present only on scheduler-stamped runs (same optional-key
            # rule as above): the batch_id/job_id/attempt identity that
            # joins this document with the batch's service stream
            out["correlation"] = dict(self.correlation)
        return out

    def save_json(self, path) -> None:
        """Atomically write :meth:`to_dict` to ``path`` as JSON."""
        from repro.util.atomic_io import atomic_write_json

        atomic_write_json(path, self.to_dict())


class Simulation:
    """Assembles and runs one configured experiment.

    The driver is stateful: :meth:`run` advances the simulation by a
    number of iterations and returns a :class:`SimulationResult` covering
    the *entire* history so far, so a run restored with
    :meth:`from_checkpoint` and continued produces the same result object
    as the uninterrupted run (the exact-resume contract, DESIGN.md §5.2).

    ``workers`` (int or ``"auto"``) enables the multicore shared-memory
    backend for the flat engine's hot kernels.  It is deliberately *not*
    part of :class:`SimulationConfig`: worker count is an execution
    detail — results, checkpoints, and telemetry are byte-stable across
    worker counts (DESIGN.md §5.5) — so it never appears in serialized
    configs or checkpoints.  Call :meth:`close` (or drop the instance)
    to release the worker processes.
    """

    def __init__(self, config: SimulationConfig, *, workers: int | str = 0) -> None:
        self.config = config
        #: completed iterations (absolute; checkpoints resume from here)
        self.iteration = 0
        #: full per-iteration history (restored on resume)
        self.records: list[IterationRecord] = []
        self.n_redistributions = 0
        self.redistribution_time = 0.0
        self.grid = Grid2D(config.nx, config.ny)
        sampler = _DISTRIBUTIONS[config.distribution]
        self.initial_particles = sampler(
            self.grid,
            config.nparticles,
            vth=config.vth,
            density=config.density,
            rng=config.seed,
        )
        self.vm = VirtualMachine(
            config.p, config.model, strict_ops=(config.guards == "strict")
        )
        self.partitioner = ParticlePartitioner(self.grid, config.scheme)
        self.decomp = self._build_decomposition()
        local = self._initial_assignment()
        #: multicore execution backend (None = in-process kernels); owned
        #: by the Simulation and shared across rank-failure recoveries
        self.backend = None
        #: degraded-mode marker: ``None`` for a true run of the requested
        #: configuration; a ``{"requested_workers", "reason"}`` dict when
        #: a multicore request silently fell back to in-process execution
        #: (results identical, wall-clock not) — surfaced in
        #: ``SimulationResult.to_dict()`` and the telemetry header so
        #: batch reports can tell real multicore runs from fallbacks.
        self.degraded: dict | None = None
        from repro.parallel_exec import resolve_workers

        requested = resolve_workers(workers)
        if requested > 1:
            if config.engine == "flat" and config.kernel == "era":
                from repro.parallel_exec import create_backend

                reasons: list[str] = []
                self.backend = create_backend(
                    workers, self.grid, reason_sink=reasons.append
                )
                if self.backend is None:
                    self.degraded = {
                        "requested_workers": requested,
                        "reason": reasons[0] if reasons else "backend unavailable",
                    }
            else:
                import warnings

                self.degraded = {
                    "requested_workers": requested,
                    "reason": (
                        f"the multicore backend applies only to engine='flat' "
                        f"with kernel='era' (got engine={config.engine!r}, "
                        f"kernel={config.kernel!r})"
                    ),
                }
                warnings.warn(
                    f"workers={workers!r} ignored: the multicore backend "
                    f"applies only to engine='flat' with kernel='era' "
                    f"(got engine={config.engine!r}, kernel={config.kernel!r})",
                    RuntimeWarning,
                    stacklevel=2,
                )
        self.redistributor: Redistributor | None = None
        self.rebalancer = None
        if config.partitioning == "adaptive":
            from repro.core.adaptive import AdaptiveMeshRebalancer

            self.rebalancer = AdaptiveMeshRebalancer(self.grid, config.scheme)
        self.policy = make_policy(config.policy)
        self.policy.bind(self.vm)
        if config.movement == "lagrangian":
            self.redistributor = Redistributor(
                self.partitioner,
                nbuckets=config.nbuckets,
                classifier=self.backend.classify if self.backend is not None else None,
            )
            # Measure the setup distribution on the machine to seed the
            # dynamic policy's T_redistribution, then reset the clock so
            # run time starts at the first iteration (as in the paper).
            result = self.redistributor.initialize(self.vm, local)
            local = result.particles
            self._setup_cost = result.cost
            if hasattr(self.policy, "record_redistribution"):
                self.policy.record_redistribution(-1, result.cost)
            self.vm.clocks[:] = 0.0
            self.vm.compute_time[:] = 0.0
            self.vm.comm_time[:] = 0.0
            self.vm.phase_time.clear()
            self.vm.stats.reset()
            self.vm.ops.reset()
        else:
            self._setup_cost = 0.0
        if config.kernel == "modern":
            from repro.pic.parallel_yee import ParallelYeePIC

            self.pic = ParallelYeePIC(
                self.vm,
                self.grid,
                self.decomp,
                local,
                dt=config.dt,
                ghost_table=config.ghost_table,
            )
        else:
            self.pic = ParallelPIC(
                self.vm,
                self.grid,
                self.decomp,
                local,
                dt=config.dt,
                ghost_table=config.ghost_table,
                movement=config.movement,
                field_solver=config.field_solver,
                engine=config.engine,
                backend=self.backend,
            )
        #: invariant guard (None when ``config.guards == "off"``: the hot
        #: paths then carry only dormant ``is None`` branches)
        self.guard: InvariantGuard | None = None
        if config.guards != "off":
            self.guard = InvariantGuard(config.guards)
            self.guard.capture(self.pic.particles)
            self.pic.guard = self.guard
        #: installed fault plan (None = fault-free machine)
        self.fault_plan: FaultPlan | None = None
        self.n_recoveries = 0
        self.recovery_time = 0.0
        self._last_checkpoint: Path | None = None
        #: per-iteration phase profile, snapshotted by :meth:`run` after
        #: every iteration and exposed on :class:`SimulationResult`
        self.trace = PhaseTrace(self.vm)
        #: telemetry bundle (None until :meth:`enable_telemetry`); when
        #: off, every hot-path hook is a dormant ``is None`` branch
        self.telemetry = None
        #: host-wall profiler (None until :meth:`enable_profiling`); the
        #: same dormant-hook contract as telemetry (DESIGN.md §5.8)
        self.profiler = None
        #: batch identity (``{"batch_id", "job_id", "attempt"}``) stamped
        #: by the job service via :meth:`set_correlation`; ``None`` for
        #: standalone runs, keeping their exports byte-identical
        self.correlation: dict | None = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the multicore backend's workers and shared memory.

        Idempotent; a no-op for in-process runs.  Also triggered by
        garbage collection, but long-lived drivers (benchmarks, test
        loops) should call it explicitly to bound worker-process count.
        """
        if self.backend is not None:
            self.backend.close()
            self.backend = None
        if getattr(self, "pic", None) is not None:
            self.pic.backend = None

    def __enter__(self) -> "Simulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def enable_telemetry(self):
        """Attach a :class:`~repro.telemetry.RunTelemetry` to this run.

        Wires the span tracer into the machine's phase contexts, the
        decision sink into the redistribution policy, and the violation
        sink into the invariant guard.  Idempotent; returns the bundle
        so callers can save its trace / metrics exports after
        :meth:`run`.  Telemetry only observes the virtual clocks —
        ``vm.elapsed()``, ``vm.ops``, and every result quantity stay
        bit-identical to an untelemetered run.
        """
        if self.telemetry is None:
            from repro.telemetry import RunTelemetry

            self.telemetry = RunTelemetry(
                self.config.p,
                config=config_to_dict(self.config),
                degraded=self.degraded,
                correlation=self.correlation,
            )
            self._wire_telemetry()
        return self.telemetry

    def enable_profiling(self):
        """Attach a :class:`~repro.obs.profile.PhaseProfiler` to this run.

        The virtual machine opens a host-wall section per phase and the
        flat engine nests kernel sections inside (worker-process handler
        timings included, drained at :meth:`save_profile`).  Idempotent;
        returns the profiler.  Profiling only reads the host clock —
        results, ``vm.elapsed()``, and ``vm.ops`` stay bit-identical to
        an unprofiled run, the same contract as telemetry.
        """
        if self.profiler is None:
            from repro.obs.profile import PhaseProfiler

            self.profiler = PhaseProfiler()
            self._wire_profiler()
        return self.profiler

    def _wire_profiler(self) -> None:
        """(Re-)attach the profiler to the current vm / stepper / backend.

        Called at enable time and again after rank-failure recovery
        (which swaps the machine and rebuilds the stepper).
        """
        prof = self.profiler
        if prof is None:
            return
        self.vm.profiler = prof
        self.pic.profiler = prof
        if self.backend is not None:
            self.backend.set_profiling(True)

    def save_profile(self, directory) -> list[Path]:
        """Export collapsed-stack ``.folded`` files (one per phase).

        Drains any worker-process handler timings from the multicore
        backend first; requires :meth:`enable_profiling`.
        """
        require(self.profiler is not None, "profiling is not enabled on this run")
        if self.backend is not None:
            self.profiler.merge_worker_samples(self.backend.drain_profile())
        return self.profiler.export_folded(directory)

    def set_correlation(self, correlation: dict | None) -> "Simulation":
        """Stamp (or clear) the run's batch identity.

        ``correlation`` is the job service's
        ``{"batch_id", "job_id", "attempt"}`` dict; it propagates into
        the telemetry header, the trace export, every checkpoint, and
        :meth:`result`'s document, making all artifacts of a batch
        joinable (DESIGN.md §5.8).  Returns ``self`` for chaining.
        """
        self.correlation = dict(correlation) if correlation is not None else None
        if self.telemetry is not None:
            self.telemetry.set_correlation(self.correlation)
        return self

    def _wire_telemetry(self) -> None:
        """(Re-)attach telemetry sinks to the current vm / policy / guard.

        Called at enable time and again after rank-failure recovery,
        which swaps the machine and rebuilds the policy from checkpoint
        state (dropping its transient sink).
        """
        tel = self.telemetry
        if tel is None:
            return
        self.vm.tracer = tel.tracer
        self.policy.decision_sink = tel.record_sar_decision
        if self.guard is not None:
            self.guard.on_violation = tel.record_guard_violation

    # ------------------------------------------------------------------
    def install_faults(self, plan: FaultPlan | None) -> "Simulation":
        """Attach a :class:`~repro.machine.faults.FaultPlan` to the machine.

        With a plan installed, :meth:`run` recovers automatically from
        :class:`~repro.util.errors.RankFailure` (shrink + restore, see
        :meth:`_recover`).  Passing ``None`` removes the plan.  Returns
        ``self`` for chaining.
        """
        self.fault_plan = plan
        self.vm.install_faults(plan)
        return self

    # ------------------------------------------------------------------
    def _build_decomposition(self) -> MeshDecomposition:
        cfg = self.config
        if cfg.partitioning in ("independent", "grid", "adaptive"):
            return CurveBlockDecomposition(self.grid, cfg.p, cfg.scheme)
        # particle partitioning: mesh splits follow particle quantiles
        # along the curve, so cells per rank are unbalanced.
        keys = self.partitioner.particle_keys(self.initial_particles)
        order = np.sort(keys)
        quantile_bounds = balanced_splits(order.size, cfg.p)
        bounds = np.empty(cfg.p + 1, dtype=np.int64)
        bounds[0] = 0
        bounds[-1] = self.grid.ncells
        for r in range(1, cfg.p):
            idx = int(quantile_bounds[r])
            bounds[r] = int(order[min(idx, order.size - 1)])
        bounds = np.maximum.accumulate(bounds)
        np.clip(bounds, 0, self.grid.ncells, out=bounds)
        return CurveBlockDecomposition(self.grid, cfg.p, cfg.scheme, bounds=bounds)

    def _initial_assignment(self) -> list[ParticleArray]:
        cfg = self.config
        if cfg.partitioning == "grid" or cfg.movement == "eulerian":
            # Particles live with the owner of their cell.
            cells = self.grid.cell_id_of_positions(
                self.initial_particles.x, self.initial_particles.y
            )
            owners = self.decomp.owner_of_cells(cells)
            return [
                self.initial_particles.take(np.flatnonzero(owners == r))
                for r in range(cfg.p)
            ]
        return self.partitioner.initial_partition(self.initial_particles, cfg.p)

    # ------------------------------------------------------------------
    def run(
        self,
        niters: int,
        *,
        checkpoint_every: int | None = None,
        checkpoint_path: str | Path | None = None,
        walltime: float | None = None,
    ) -> SimulationResult:
        """Run ``niters`` further iterations under the configured policy.

        On a fresh simulation this is iterations ``0 .. niters-1``; on a
        simulation restored with :meth:`from_checkpoint` the iteration
        numbering (and therefore the policy schedule) continues from the
        checkpoint.  The returned result always covers the full history,
        including restored iterations.

        With ``checkpoint_every=k`` a checkpoint is written to
        ``checkpoint_path`` (atomically overwritten in place) after every
        ``k``-th completed iteration, counted absolutely.

        When a fault plan is installed (:meth:`install_faults`) and a
        rank dies, the :class:`~repro.util.errors.RankFailure` is caught
        here and :meth:`_recover` shrinks the machine to the survivors,
        restores state, and the loop replays/continues until the target
        iteration is reached — the recovery overhead stays on the virtual
        clock.

        ``walltime`` (host seconds, default off) is the wall-clock
        watchdog: when the budget is exhausted the run stops after the
        *current* iteration completes, a final checkpoint is written
        (when checkpointing is configured), a structured ``timeout``
        event lands in the telemetry stream, and
        :class:`~repro.util.errors.JobTimeout` is raised carrying the
        last completed iteration — so a supervisor (or ``repro resume``)
        can pick the run back up from the checkpoint.
        """
        require(niters >= 0, "niters must be >= 0")
        if checkpoint_every is not None:
            require(checkpoint_every >= 1, "checkpoint_every must be >= 1")
            require(
                checkpoint_path is not None,
                "checkpoint_every requires checkpoint_path",
            )
        if walltime is not None:
            require(walltime > 0, "walltime must be > 0 seconds")
        import time as _time

        t_wall0 = _time.monotonic()
        target = self.iteration + niters
        while self.iteration < target:
            vm = self.vm  # rebound after a recovery (the machine shrinks)
            it = self.iteration
            injector = vm.fault_injector
            if injector is not None:
                injector.set_iteration(it)
            tel = self.telemetry
            if tel is not None:
                tel.set_iteration(it)
                tel.begin_iteration(vm, self.pic)
            try:
                t0 = vm.elapsed()
                self.pic.step()
                t_iter = vm.elapsed() - t0
                epoch = vm.stats.snapshot_epoch()
                scatter = epoch.get("scatter")
                max_bytes = scatter.max_bytes if scatter is not None else 0
                max_msgs = scatter.max_msgs if scatter is not None else 0
                self.policy.record_iteration(it, t_iter)
                if self.policy.needs_load:
                    self.policy.record_load(
                        it, [int(parts.n) for parts in self.pic.particles]
                    )
                redistributed = False
                cost = 0.0
                redis_epoch = None
                if (
                    self.redistributor is not None
                    and self.config.movement == "lagrangian"
                    and self.policy.should_redistribute(it)
                ):
                    result = self.redistributor.redistribute(vm, self.pic.particles)
                    self.pic.particles = result.particles
                    if self.guard is not None:
                        self.guard.after_redistribution(result.particles)
                    cost = result.cost
                    self.redistribution_time += cost
                    self.n_redistributions += 1
                    redistributed = True
                    self.policy.record_redistribution(it, cost)
                    # keep redistribution comm out of the scatter series
                    redis_epoch = vm.stats.snapshot_epoch()
                elif self.rebalancer is not None and self.policy.should_redistribute(it):
                    cost = self.rebalancer.rebalance(self.pic)
                    self.decomp = self.pic.decomp  # rebalance moved the bounds
                    if self.guard is not None:
                        self.guard.after_redistribution(self.pic.particles)
                    self.redistribution_time += cost
                    self.n_redistributions += 1
                    redistributed = True
                    self.policy.record_redistribution(it, cost)
                    redis_epoch = vm.stats.snapshot_epoch()
                self.records.append(
                    IterationRecord(it, t_iter, max_bytes, max_msgs, redistributed, cost)
                )
                phase_row = self.trace.snapshot()
                if tel is not None:
                    tel.end_iteration(
                        vm,
                        self.pic,
                        iteration=it,
                        phase_time=phase_row,
                        comm_epochs=[epoch] + ([redis_epoch] if redis_epoch else []),
                        redistributed=redistributed,
                        redistribution_cost=cost,
                    )
                self.iteration = it + 1
                if checkpoint_every is not None and self.iteration % checkpoint_every == 0:
                    self.checkpoint(checkpoint_path)
            except RankFailure as failure:
                self._recover(failure)
            if walltime is not None and self.iteration < target:
                elapsed = _time.monotonic() - t_wall0
                if elapsed >= walltime:
                    self._on_walltime_expired(
                        walltime, elapsed, checkpoint_path, checkpoint_every
                    )
        return self.result()

    def _on_walltime_expired(
        self,
        walltime: float,
        elapsed: float,
        checkpoint_path: str | Path | None,
        checkpoint_every: int | None,
    ) -> None:
        """Stop a watchdogged run: final checkpoint, telemetry event, raise."""
        from repro.util.errors import JobTimeout

        if checkpoint_every is not None and checkpoint_path is not None:
            # a resume from here replays nothing: the checkpoint is at
            # the exact iteration the timeout interrupted
            self.checkpoint(checkpoint_path)
        if self.telemetry is not None:
            self.telemetry.record_event(
                "timeout",
                t=self.vm.elapsed(),
                iteration=self.iteration,
                walltime=float(walltime),
                elapsed=float(elapsed),
            )
        raise JobTimeout("run", walltime, elapsed, iteration=self.iteration)

    # ------------------------------------------------------------------
    # rank-failure recovery
    # ------------------------------------------------------------------
    def _recover(self, failure: RankFailure) -> None:
        """Shrink the machine to the survivors and restore run state.

        Two paths, both leaving the run able to continue from
        :meth:`run`'s loop:

        * **checkpoint restore** — when :meth:`checkpoint` wrote a file
          this run (or the run came from :meth:`from_checkpoint`), the
          full state at iteration ``k`` is reloaded, repartitioned onto
          the ``p - 1`` survivors, and iterations ``k ..`` are replayed.
          Physics is exact: the final state matches the fault-free run
          (the atol=1e-12 contract of DESIGN.md §5.3).
        * **live salvage** — with no checkpoint, the dead rank's
          particles are recovered from the live pool state and
          redistributed over the survivors; the current iteration
          restarts.  Conservation invariants hold, but the state is the
          mid-step one, so only the invariants — not bit-exactness — are
          guaranteed.

        The new machine's clocks start at the failed machine's elapsed
        time (which already includes the detection timeout), so recovery
        overhead is visible in ``vm.elapsed()`` and, via the
        ``"recovery"`` / ``"redistribution"`` phase labels, in the phase
        breakdown.
        """
        plan = self.fault_plan
        if plan is None:  # no plan installed: not recoverable here
            raise failure
        old_vm = self.vm
        dead = failure.rank
        p_new = old_vm.p - 1
        if p_new < 1:
            raise failure
        t_fail = old_vm.elapsed()  # includes the charged detection timeout

        # -- shrink the machine, carrying the accumulated time forward --
        cfg = replace(self.config, p=p_new)
        vm = VirtualMachine(p_new, cfg.model, strict_ops=(cfg.guards == "strict"))
        vm.clocks[:] = t_fail
        vm.compute_time[:] = float(old_vm.compute_time.max())
        vm.comm_time[:] = float(old_vm.comm_time.max())
        for name, t in old_vm.phase_time.items():
            vm.phase_time[name] = np.full(p_new, float(t.max()))
        vm.ops.load_dict(old_vm.ops.as_dict())
        survivor_plan = plan.survivor_plan(dead)
        vm.install_faults(survivor_plan)
        injector = vm.fault_injector
        if injector is not None:
            injector.set_iteration(self.iteration)
        tel = self.telemetry
        if tel is not None:
            # attach the tracer before recovery charges land so the
            # "recovery" phase shows up as spans on the shrunk machine
            vm.tracer = tel.tracer
            tel.set_iteration(self.iteration)
            tel.record_event(
                "rank_failure", t=t_fail, iteration=self.iteration, rank=dead
            )
        self.config = cfg
        self.vm = vm
        self.fault_plan = survivor_plan
        # the shrunk machine carries the old phase maxima forward, so the
        # phase trace stays continuous across the swap (no stale machine,
        # no double counting)
        self.trace.rebind(vm)
        self.decomp = self._build_decomposition()

        # -- recover the physical + control state --------------------------
        data = None
        if self._last_checkpoint is not None:
            try:
                data = load_checkpoint(self._last_checkpoint)
            except (FileNotFoundError, CheckpointError):
                data = None
        if data is not None and data.run_state is not None:
            rs = data.run_state
            recovery_source = "checkpoint"
            all_parts = data.all_particles()
            fields = data.fields
            restart_iteration = data.iteration
            self.policy = policy_from_state(rs["policy"])
            self.records = [IterationRecord(**r) for r in rs["records"]]
            self.n_redistributions = int(rs["n_redistributions"])
            self.redistribution_time = float(rs["redistribution_time"])
            self._setup_cost = float(rs["setup_cost"])
            # survivors re-read the checkpoint from stable storage: one
            # broadcast of the full state, charged under "recovery"
            nbytes = int(all_parts.to_matrix().nbytes) + sum(
                getattr(fields, n).nbytes
                for n in ("ex", "ey", "ez", "bx", "by", "bz", "jx", "jy", "jz", "rho")
            )
            with vm.phase("recovery"):
                vm.charge_comm_seconds(vm.model.collective_cost(p_new, nbytes))
        else:
            # live salvage: the pool state (including the dead rank's
            # partition) is still addressable; survivors agree on the
            # salvage in one small coordination round and restart the
            # interrupted iteration.
            recovery_source = "salvage"
            all_parts = ParticleArray.concat(self.pic.particles)
            fields = self.pic.fields
            restart_iteration = self.iteration
            with vm.phase("recovery"):
                vm.charge_comm_seconds(vm.model.collective_cost(p_new, 8))

        # -- repartition onto the survivors --------------------------------
        if cfg.partitioning == "grid" or cfg.movement == "eulerian":
            cells = self.grid.cell_id_of_positions(all_parts.x, all_parts.y)
            owners = self.decomp.owner_of_cells(cells)
            local = [all_parts.take(np.flatnonzero(owners == r)) for r in range(p_new)]
        else:
            splits = balanced_splits(all_parts.n, p_new)
            local = [
                all_parts.take(np.arange(splits[r], splits[r + 1])) for r in range(p_new)
            ]
        self.rebalancer = None
        if cfg.partitioning == "adaptive":
            from repro.core.adaptive import AdaptiveMeshRebalancer

            self.rebalancer = AdaptiveMeshRebalancer(self.grid, cfg.scheme)
        self.redistributor = None
        if cfg.movement == "lagrangian":
            self.redistributor = Redistributor(
                self.partitioner,
                nbuckets=cfg.nbuckets,
                classifier=self.backend.classify if self.backend is not None else None,
            )
            local = self.redistributor.initialize(vm, local).particles

        # -- rebuild the stepper on the shrunk machine ----------------------
        if cfg.kernel == "modern":
            from repro.pic.parallel_yee import ParallelYeePIC

            self.pic = ParallelYeePIC(
                vm,
                self.grid,
                self.decomp,
                local,
                dt=cfg.dt,
                ghost_table=cfg.ghost_table,
            )
        else:
            self.pic = ParallelPIC(
                vm,
                self.grid,
                self.decomp,
                local,
                dt=cfg.dt,
                ghost_table=cfg.ghost_table,
                movement=cfg.movement,
                field_solver=cfg.field_solver,
                engine=cfg.engine,
                backend=self.backend,
            )
        self.pic.fields = fields
        self.pic.iteration = restart_iteration
        self.iteration = restart_iteration
        if self.guard is not None:
            self.pic.guard = self.guard
            self.guard.after_redistribution(self.pic.particles)
        # the policy may have been rebuilt from checkpoint state, and
        # either way it now advises a different (shrunk) machine
        self.policy.bind(vm)
        vm.stats.snapshot_epoch()  # keep recovery comm out of the scatter series
        self.n_recoveries += 1
        self.recovery_time += (vm.elapsed() - t_fail) + plan.detect_timeout
        if tel is not None:
            # the policy (and possibly the guard wiring target) were
            # rebuilt above — re-attach every telemetry sink
            tel.on_shrink(p_new, dead, restart_iteration, t=vm.elapsed())
            tel.record_event(
                "recovery",
                t=vm.elapsed(),
                iteration=restart_iteration,
                source=recovery_source,
                dead_rank=dead,
                p=p_new,
            )
            self._wire_telemetry()
        # the machine and stepper were both swapped above
        self._wire_profiler()

    def result(self) -> SimulationResult:
        """The :class:`SimulationResult` of the history run so far."""
        vm = self.vm
        return SimulationResult(
            config=self.config,
            records=list(self.records),
            total_time=vm.elapsed(),
            computation_time=float(vm.compute_time.max()),
            n_redistributions=self.n_redistributions,
            redistribution_time=self.redistribution_time,
            phase_breakdown=vm.phase_breakdown(),
            n_recoveries=self.n_recoveries,
            recovery_time=self.recovery_time,
            final_state=self.final_state_summary(),
            trace=self.trace,
            telemetry=self.telemetry.aggregates() if self.telemetry is not None else None,
            degraded=self.degraded,
            correlation=self.correlation,
        )

    def final_state_summary(self) -> dict:
        """Rank-count-independent physics summary of the current state.

        Every particle reduction sums in a deterministic order (sorted by
        persistent particle id), so the summary of a run that shrank from
        ``p`` to ``p - 1`` ranks is comparable at tight tolerance to the
        fault-free run's — the atol=1e-12 recovery contract of
        DESIGN.md §5.3 is stated on exactly these numbers.
        """
        parts = ParticleArray.concat(self.pic.particles)
        order = np.argsort(parts.ids, kind="stable")
        f = self.pic.fields

        def ordered_sum(a: np.ndarray) -> float:
            return float(np.sum(a[order]))

        return {
            "iteration": int(self.iteration),
            "n_particles": int(parts.n),
            "total_charge": ordered_sum(parts.q),
            "x_sum": ordered_sum(parts.x),
            "y_sum": ordered_sum(parts.y),
            "ux_sum": ordered_sum(parts.ux),
            "uy_sum": ordered_sum(parts.uy),
            "uz_sum": ordered_sum(parts.uz),
            "rho_sum": float(np.sum(f.rho)),
            "e_energy": float(np.sum(f.ex**2 + f.ey**2 + f.ez**2)),
            "b_energy": float(np.sum(f.bx**2 + f.by**2 + f.bz**2)),
        }

    # ------------------------------------------------------------------
    # exact-resume checkpoint / restart
    # ------------------------------------------------------------------
    def checkpoint(self, path: str | Path) -> Path:
        """Write a format-v2 exact-resume checkpoint of the full run state.

        Serializes the physical state (per-rank particles, fields, grid),
        the virtual machine (clocks, compute/comm splits, per-phase times
        and comm stats, op counters), the policy internals, the current
        decomposition bounds, the redistributor's build-time sort keys,
        and the per-iteration record history.  The write is atomic (temp
        file + ``os.replace``): a crash mid-write never leaves a file
        :func:`~repro.pic.checkpoint.load_checkpoint` accepts.
        """
        run_state = {
            "config": config_to_dict(self.config, full_model=True),
            "vm": self.vm.state_dict(),
            "policy": self.policy.state_dict(),
            "records": [asdict(r) for r in self.records],
            "n_redistributions": self.n_redistributions,
            "redistribution_time": self.redistribution_time,
            "n_recoveries": self.n_recoveries,
            "recovery_time": self.recovery_time,
            "setup_cost": self._setup_cost,
            # the *live* decomposition: adaptive rebalancing swaps it at
            # runtime (pic.decomp), which Simulation.decomp tracks
            "decomp_bounds": self.pic.decomp.curve_bounds.tolist(),
            # per-iteration phase-profile rows: telemetry survives resume
            # (a resumed run's PhaseTrace covers the full history)
            "trace_rows": self.trace.rows,
        }
        if self.correlation is not None:
            # batch identity rides along (optional key: standalone
            # checkpoints stay byte-identical), so a checkpoint is
            # joinable with its batch's service stream
            run_state["correlation"] = dict(self.correlation)
        sort_keys = (
            self.redistributor.export_keys() if self.redistributor is not None else None
        )
        written = save_checkpoint(
            path,
            self.grid,
            self.pic.fields,
            self.pic.particles,
            self.iteration,
            run_state=run_state,
            sort_keys=sort_keys,
        )
        self._last_checkpoint = written  # rank-failure recovery restores from here
        if self.telemetry is not None:
            self.telemetry.record_event(
                "checkpoint",
                t=self.vm.elapsed(),
                iteration=self.iteration,
                path=str(written),
            )
        return written

    @classmethod
    def from_checkpoint(
        cls,
        path: str | Path,
        *,
        guards: str | None = None,
        workers: int | str = 0,
    ) -> "Simulation":
        """Rebuild a :class:`Simulation` from a v2 checkpoint, exactly.

        The configuration embedded in the checkpoint reconstructs the
        stack deterministically; every piece of mutable state is then
        overwritten from the archive, so continuing with :meth:`run`
        reproduces the uninterrupted run bit-for-bit.

        ``guards`` overrides the checkpointed guard severity; with
        ``guards="strict"`` a legacy format-v1 file is refused with
        :class:`CheckpointError` instead of loading degraded.

        ``workers`` enables the multicore backend for the resumed run —
        a checkpoint never records a worker count (execution detail),
        so any run can resume with any ``workers`` value and produce
        bit-identical results.
        """
        if guards is not None:
            require(
                guards in GUARD_MODES,
                f"guards must be one of {GUARD_MODES}, got {guards!r}",
            )
        data = load_checkpoint(path, strict=(guards == "strict"))
        if data.run_state is None:
            raise CheckpointError(
                f"{path} is a format-v1 checkpoint (particles/fields only) and "
                "cannot seed an exact resume; re-save the run with "
                "Simulation.checkpoint to get a v2 file"
            )
        cfg = config_from_dict(data.run_state["config"])
        if guards is not None and guards != cfg.guards:
            cfg = replace(cfg, guards=guards)
        sim = cls(cfg, workers=workers)
        sim._restore(data)
        sim._last_checkpoint = Path(path)
        return sim

    def _restore(self, data: CheckpointData) -> None:
        cfg = self.config
        rs = data.run_state
        if (data.grid.nx, data.grid.ny) != (self.grid.nx, self.grid.ny):
            raise CheckpointError(
                f"checkpoint grid {data.grid.nx}x{data.grid.ny} does not match "
                f"config grid {self.grid.nx}x{self.grid.ny}"
            )
        if len(data.particles) != cfg.p:
            raise CheckpointError(
                f"checkpoint has {len(data.particles)} particle sets, config p={cfg.p}"
            )
        bounds = np.asarray(rs["decomp_bounds"], dtype=np.int64)
        if not np.array_equal(bounds, self.decomp.curve_bounds):
            # Adaptive rebalancing moved the block boundaries at runtime.
            decomp = CurveBlockDecomposition(self.grid, cfg.p, cfg.scheme, bounds=bounds)
            self.decomp = decomp
            self.pic.set_decomposition(decomp)
        self.pic.particles = list(data.particles)
        self.pic.fields = data.fields
        self.pic.iteration = data.iteration
        self.vm.load_state(rs["vm"])
        # Rebuild the phase trace on the restored machine: the fresh
        # baseline is the restored breakdown (pre-checkpoint time belongs
        # to the rows we restore, not to the next snapshot), and the
        # restored rows make a resumed run's trace cover the full history.
        # Checkpoints written before telemetry carry no rows.
        self.trace = PhaseTrace(self.vm)
        self.trace.rows = [dict(row) for row in rs.get("trace_rows", [])]
        self.policy = policy_from_state(rs["policy"])
        self.policy.bind(self.vm)
        if self.redistributor is not None:
            if data.sort_keys is None:
                raise CheckpointError(
                    "checkpoint carries no redistribution sort keys but the "
                    "configured run (lagrangian movement) needs them"
                )
            self.redistributor.restore_keys(data.sort_keys, self.pic.particles)
        self._setup_cost = float(rs["setup_cost"])
        self.iteration = data.iteration
        self.records = [IterationRecord(**r) for r in rs["records"]]
        self.n_redistributions = int(rs["n_redistributions"])
        self.redistribution_time = float(rs["redistribution_time"])
        # keys absent from checkpoints written before fault tolerance
        self.n_recoveries = int(rs.get("n_recoveries", 0))
        self.recovery_time = float(rs.get("recovery_time", 0.0))
        # batch identity (absent from standalone / pre-observability
        # checkpoints); the job service re-stamps the current attempt
        self.correlation = (
            dict(rs["correlation"]) if rs.get("correlation") is not None else None
        )
