r"""Yee-staggered FDTD and an exactly charge-conserving PIC stepper.

The reproduction's default field solve is collocated (all components on
the nodes, centred differences) because that matches the paper's
description and communication pattern.  This module provides the modern
alternative: the staggered Yee lattice, which paired with the zigzag
current deposition (:mod:`repro.pic.zigzag`) yields a PIC loop that
satisfies the discrete Gauss law **exactly** — no Marder cleaning, no
source smoothing required.

Staggering (array index ``[j, i]`` holds the component at):

====  =====================
Ex    ``(i + 1/2, j)``
Ey    ``(i, j + 1/2)``
Ez    ``(i, j)``
Bx    ``(i, j + 1/2)``
By    ``(i + 1/2, j)``
Bz    ``(i + 1/2, j + 1/2)``
====  =====================

All differences are the natural half-cell-offset ones, so every update
still touches only nearest neighbours (same halo pattern as the
collocated solve).  The zigzag ``Jx``/``Jy`` live exactly on the Ex/Ey
faces, which is what makes continuity line up with the staggered
divergence.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.fields import FieldState
from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray
from repro.pic.deposition import deposit_charge_current
from repro.pic.interpolation import gather_from_node_values
from repro.pic.poisson import PoissonSolver
from repro.pic.push import boris_push
from repro.pic.zigzag import deposit_current_zigzag
from repro.util import require, require_positive

__all__ = ["YeeSolver", "YeePIC", "staggered_cic"]


def staggered_cic(
    grid: Grid2D,
    x: np.ndarray,
    y: np.ndarray,
    shift_x: float,
    shift_y: float,
) -> tuple[np.ndarray, np.ndarray]:
    """CIC vertices/weights for a grid staggered by ``(shift_x, shift_y)``
    cells (e.g. ``(0.5, 0)`` for the Ex/By faces)."""
    return grid.cic_vertices_weights(
        np.asarray(x, float) - shift_x * grid.dx,
        np.asarray(y, float) - shift_y * grid.dy,
    )


class YeeSolver:
    """Leapfrog FDTD on the staggered Yee lattice (periodic)."""

    def __init__(self, grid: Grid2D) -> None:
        self.grid = grid

    def cfl_limit(self) -> float:
        """Yee stability limit ``1 / sqrt(1/dx^2 + 1/dy^2)``."""
        return 1.0 / np.sqrt(1.0 / self.grid.dx**2 + 1.0 / self.grid.dy**2)

    def validate_dt(self, dt: float) -> None:
        """Raise if ``dt`` exceeds the CFL limit."""
        require_positive(dt, "dt")
        limit = self.cfl_limit()
        require(dt <= limit, f"dt={dt:g} violates the Yee CFL limit {limit:g}")

    # -- staggered first differences (periodic) -------------------------
    def _dxp(self, a: np.ndarray) -> np.ndarray:  # forward x difference
        return (np.roll(a, -1, axis=1) - a) / self.grid.dx

    def _dxm(self, a: np.ndarray) -> np.ndarray:  # backward x difference
        return (a - np.roll(a, 1, axis=1)) / self.grid.dx

    def _dyp(self, a: np.ndarray) -> np.ndarray:
        return (np.roll(a, -1, axis=0) - a) / self.grid.dy

    def _dym(self, a: np.ndarray) -> np.ndarray:
        return (a - np.roll(a, 1, axis=0)) / self.grid.dy

    def _advance_b(self, f: FieldState, dt: float) -> None:
        f.bx -= dt * self._dyp(f.ez)
        f.by += dt * self._dxp(f.ez)
        f.bz -= dt * (self._dxp(f.ey) - self._dyp(f.ex))

    def step(self, fields: FieldState, dt: float) -> None:
        """B half step, E full step (with fields.j*), B half step."""
        self.validate_dt(dt)
        f = fields
        self._advance_b(f, 0.5 * dt)
        f.ex += dt * (self._dym(f.bz) - f.jx)
        f.ey += dt * (-self._dxm(f.bz) - f.jy)
        f.ez += dt * (self._dxm(f.by) - self._dym(f.bx) - f.jz)
        self._advance_b(f, 0.5 * dt)

    # -- discrete conservation checks -----------------------------------
    def divergence_b(self, fields: FieldState) -> float:
        """Max |div B| on the staggered lattice (exactly conserved at 0)."""
        div = self._dxp(fields.bx) + self._dyp(fields.by)
        return float(np.abs(div).max())

    def gauss_residual(self, fields: FieldState, rho: np.ndarray) -> np.ndarray:
        """``div E - (rho - <rho>)`` with the staggered divergence."""
        div = self._dxm(fields.ex) + self._dym(fields.ey)
        rho = np.asarray(rho)
        return div - (rho - rho.mean())

    def initial_e_from_rho(self, rho: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Electrostatic initial condition satisfying the staggered Gauss
        law exactly: ``phi`` from the 5-point Poisson solve, ``E`` by
        staggered gradients."""
        phi = PoissonSolver(self.grid).solve_fft(np.asarray(rho))
        ex = -self._dxp(phi)  # lives at (i + 1/2, j)
        ey = -self._dyp(phi)  # lives at (i, j + 1/2)
        return ex, ey


class YeePIC:
    """Exactly charge-conserving sequential PIC (Yee + zigzag).

    The step ordering is the standard charge-conserving loop: gather
    fields at t^n, push, deposit J^(n+1/2) from the motion segments,
    advance the fields.  ``max |div E - rho|`` stays at machine
    precision for the whole run — property-tested.
    """

    def __init__(
        self,
        grid: Grid2D,
        particles: ParticleArray,
        *,
        dt: float | None = None,
    ) -> None:
        self.grid = grid
        self.particles = particles
        self.solver = YeeSolver(grid)
        self.dt = dt if dt is not None else 0.9 * self.solver.cfl_limit()
        self.solver.validate_dt(self.dt)
        self.fields = FieldState.zeros(grid)
        # deposit initial rho and the consistent electrostatic E field
        self._update_rho()
        self.fields.ex, self.fields.ey = self.solver.initial_e_from_rho(self.fields.rho)
        self.iteration = 0

    def _update_rho(self) -> None:
        rho, _, _, _ = deposit_charge_current(self.grid, self.particles)
        self.fields.rho = rho

    def _gather(self) -> tuple[np.ndarray, np.ndarray]:
        """Interpolate the staggered components to the particles."""
        parts = self.particles
        shifts = {
            "ex": (0.5, 0.0),
            "ey": (0.0, 0.5),
            "ez": (0.0, 0.0),
            "bx": (0.0, 0.5),
            "by": (0.5, 0.0),
            "bz": (0.5, 0.5),
        }
        out = []
        for name, (sx, sy) in shifts.items():
            nodes, weights = staggered_cic(self.grid, parts.x, parts.y, sx, sy)
            values = getattr(self.fields, name).ravel()[None, :]
            out.append(gather_from_node_values(values, nodes, weights)[0])
        stacked = np.stack(out)
        return stacked[:3], stacked[3:]

    def step(self) -> None:
        """One charge-conserving iteration."""
        parts = self.particles
        e, b = self._gather()
        x_old = parts.x.copy()
        y_old = parts.y.copy()
        boris_push(self.grid, parts, e, b, self.dt)
        jx, jy = deposit_current_zigzag(
            self.grid, x_old, y_old, parts.x, parts.y, parts.w * parts.q, self.dt
        )
        self.fields.jx = jx
        self.fields.jy = jy
        # Jz: plain (node-centred) deposition — the z current does not
        # enter the 2-D continuity equation.
        _, _, _, jz = deposit_charge_current(self.grid, parts)
        self.fields.jz = jz
        self.solver.step(self.fields, self.dt)
        self._update_rho()
        self.iteration += 1

    def run(self, niters: int) -> None:
        """Run ``niters`` iterations."""
        require(niters >= 0, "niters must be >= 0")
        for _ in range(niters):
            self.step()

    # ------------------------------------------------------------------
    def gauss_error(self) -> float:
        """Max |div E - rho| — machine precision by construction."""
        return float(np.abs(self.solver.gauss_residual(self.fields, self.fields.rho)).max())

    def total_energy(self) -> float:
        """Field energy plus particle kinetic energy."""
        return self.fields.field_energy(self.grid) + self.particles.kinetic_energy()

    def __repr__(self) -> str:
        return f"YeePIC(grid={self.grid!r}, n={self.particles.n}, iter={self.iteration})"
