"""Batch rollups: join a service stream with its per-job run telemetry.

``repro submit --obs-dir DIR`` leaves one directory per batch:

* ``service.jsonl`` — the scheduler's event stream (schema
  ``repro-service/2``), validated by
  :func:`repro.telemetry.schema.validate_service`;
* ``job-<id12>-a<n>.metrics.jsonl`` / ``.trace.json`` — each attempt's
  run-level telemetry, stamped with the batch's correlation identity.

:func:`aggregate_batch` reads all of it and produces one rollup
document (schema ``repro-batch-rollup/1``): per-policy phase-time
breakdowns, load-imbalance distributions, retry / cache / quarantine
counters, the queue-depth timeline, and a correlation audit proving
that every artifact joins on ``batch_id`` / ``job_id`` / ``attempt``
with no orphans.  ``repro report --batch DIR`` renders it via
:func:`render_batch_rollup`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.report import format_table
from repro.telemetry.schema import (
    ParsedMetrics,
    ParsedService,
    TelemetrySchemaError,
    validate_metrics,
    validate_service,
)

__all__ = ["BATCH_ROLLUP_SCHEMA", "aggregate_batch", "render_batch_rollup"]

#: Schema marker on every rollup document.
BATCH_ROLLUP_SCHEMA = "repro-batch-rollup/1"

#: the service stream file name inside an obs directory
STREAM_NAME = "service.jsonl"


def _counter(summary: dict | None, name: str) -> float:
    """One counter value from a service summary's registry snapshot."""
    if summary is None:
        return 0.0
    entry = (summary.get("aggregates") or {}).get(name)
    if not entry or entry.get("kind") != "counter":
        return 0.0
    return float(entry.get("value") or 0.0)


def _job_table(stream: ParsedService) -> dict[str, dict]:
    """Fold the stream's job events into one row per job name."""
    jobs: dict[str, dict] = {}
    for ev in stream.job_events():
        row = jobs.setdefault(
            ev["job"],
            {
                "job_id": ev.get("job_id"),
                "launches": 0,
                "retries": 0,
                "attempts": 0,
                "state": "pending",
                "cached": False,
                "wall": 0.0,
            },
        )
        if ev.get("job_id") is not None:
            row["job_id"] = ev["job_id"]
        if ev.get("attempt") is not None:
            row["attempts"] = max(row["attempts"], int(ev["attempt"]) + 1)
        kind = ev["kind"]
        if kind == "job_launched":
            row["launches"] += 1
            row["state"] = "running"
        elif kind == "job_retry":
            row["retries"] += 1
            row["state"] = "retrying"
        elif kind == "job_done":
            row["state"] = "done"
            row["cached"] = bool(ev.get("cached"))
            row["wall"] = float(ev.get("wall", 0.0))
        elif kind == "job_failed":
            row["state"] = "failed"
        elif kind == "job_cancelled":
            row["state"] = "cancelled"
    return jobs


def _imbalance_summary(values: list[float]) -> dict | None:
    if not values:
        return None
    return {
        "count": len(values),
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
    }


def _policy_rollup(parsed: list[tuple[str, ParsedMetrics]]) -> dict[str, dict]:
    """Group per-job metrics by redistribution policy and total them."""
    policies: dict[str, dict] = {}
    for _, metrics in parsed:
        cfg = metrics.header.get("config") or {}
        policy = str(cfg.get("policy", "?"))
        entry = policies.setdefault(
            policy,
            {"runs": 0, "iterations": 0, "phase_time": {}, "_imbalances": []},
        )
        entry["runs"] += 1
        entry["iterations"] += len(metrics.iterations)
        for rec in metrics.iterations:
            for phase, dt in rec["phase_time"].items():
                entry["phase_time"][phase] = entry["phase_time"].get(phase, 0.0) + dt
            entry["_imbalances"].append(float(rec["imbalance"]))
    for entry in policies.values():
        entry["imbalance"] = _imbalance_summary(entry.pop("_imbalances"))
        entry["phase_time"] = {
            k: round(v, 6) for k, v in sorted(entry["phase_time"].items())
        }
    return policies


def aggregate_batch(directory: str | Path) -> dict:
    """Aggregate one batch obs directory into a rollup document.

    Validates the service stream and every ``job-*.metrics.jsonl`` it
    finds, joins them on the correlation identity, and raises
    :class:`~repro.telemetry.schema.TelemetrySchemaError` if the
    directory has no (valid) service stream.  Per-job metrics whose
    ``batch_id`` does not match the stream's — or which carry no
    correlation at all — are reported as orphans, not silently merged.
    """
    directory = Path(directory)
    stream_path = directory / STREAM_NAME
    if not stream_path.exists():
        raise TelemetrySchemaError(f"{directory} has no {STREAM_NAME} stream")
    stream = validate_service(stream_path)
    batch_id = stream.batch_id

    metrics_paths = sorted(directory.glob("job-*.metrics.jsonl"))
    joined: list[tuple[str, ParsedMetrics]] = []
    orphans: list[dict] = []
    jobs = _job_table(stream)
    known_job_ids = {row["job_id"] for row in jobs.values() if row["job_id"]}
    for path in metrics_paths:
        metrics = validate_metrics(path)
        corr = metrics.header.get("correlation")
        if not corr or corr.get("batch_id") != batch_id:
            orphans.append({"file": path.name, "reason": "batch_id mismatch or missing"})
        elif corr.get("job_id") not in known_job_ids:
            orphans.append({"file": path.name, "reason": "job_id not in stream"})
        else:
            joined.append((path.name, metrics))

    queue_timeline = [
        [ev["t"], ev["queue_depth"]]
        for ev in stream.events
        if "queue_depth" in ev
    ]
    summary = stream.summary
    rollup = {
        "schema": BATCH_ROLLUP_SCHEMA,
        "batch_id": batch_id,
        "stream_schema": stream.schema,
        "jobs": int(stream.header["jobs"]),
        "workers": int(stream.header["workers"]),
        "started_at": stream.header.get("started_at"),
        "counters": {
            "completed": _counter(summary, "jobs.completed"),
            "failed": _counter(summary, "jobs.failed"),
            "cancelled": _counter(summary, "jobs.cancelled"),
            "retries": _counter(summary, "jobs.retries"),
            "timeouts": _counter(summary, "jobs.timeouts"),
            "cache_hits": _counter(summary, "cache.hits"),
            "cache_misses": _counter(summary, "cache.misses"),
            "cache_quarantined": _counter(summary, "cache.quarantined"),
            "workers_lost": _counter(summary, "workers.lost"),
            "heartbeats_lost": _counter(summary, "heartbeats.lost"),
            "pool_shrinks": _counter(summary, "pool.shrinks"),
        },
        "queue_depth_timeline": queue_timeline,
        "jobs_detail": jobs,
        "policies": _policy_rollup(joined),
        "correlation": {
            "metrics_files": len(metrics_paths),
            "joined": len(joined),
            "orphans": orphans,
        },
    }
    return rollup


def render_batch_rollup(rollup: dict) -> str:
    """Render a rollup document as a terminal report string."""
    out: list[str] = []
    title = "=== batch report"
    if rollup.get("batch_id"):
        title += f": {rollup['batch_id']}"
    out.append(title + " ===")
    c = rollup["counters"]
    out.append(
        f"jobs: {rollup['jobs']}   workers: {rollup['workers']}   "
        f"done: {c['completed']:.0f}   failed: {c['failed']:.0f}   "
        f"cancelled: {c['cancelled']:.0f}"
    )
    out.append(
        f"retries: {c['retries']:.0f}   timeouts: {c['timeouts']:.0f}   "
        f"cache: {c['cache_hits']:.0f} hit / {c['cache_misses']:.0f} miss "
        f"/ {c['cache_quarantined']:.0f} quarantined   "
        f"workers lost: {c['workers_lost']:.0f}   "
        f"pool shrinks: {c['pool_shrinks']:.0f}"
    )

    jobs = rollup.get("jobs_detail") or {}
    if jobs:
        rows = [
            [
                name,
                row["state"],
                row["attempts"],
                row["retries"],
                "yes" if row["cached"] else "no",
                round(float(row["wall"]), 2),
                (row["job_id"] or "")[:12],
            ]
            for name, row in sorted(jobs.items())
        ]
        out.append("")
        out.append(
            format_table(
                ["job", "state", "attempts", "retries", "cache", "wall (s)", "key"],
                rows,
            )
        )

    policies = rollup.get("policies") or {}
    if policies:
        phases = sorted({p for entry in policies.values() for p in entry["phase_time"]})
        rows = []
        for policy, entry in sorted(policies.items()):
            imb = entry.get("imbalance") or {}
            rows.append(
                [policy, entry["runs"], entry["iterations"]]
                + [round(entry["phase_time"].get(p, 0.0), 4) for p in phases]
                + [round(imb.get("mean", 0.0), 3), round(imb.get("max", 0.0), 3)]
            )
        out.append("")
        out.append(
            format_table(
                ["policy", "runs", "iters"] + phases + ["imb mean", "imb max"],
                rows,
                title="per-policy phase time (virtual s) + load imbalance",
            )
        )

    timeline = rollup.get("queue_depth_timeline") or []
    if timeline:
        peak = max(d for _, d in timeline)
        out.append("")
        out.append(
            f"queue depth: peak {peak} over {len(timeline)} events "
            f"({timeline[-1][0]:.2f}s span)"
        )

    corr = rollup.get("correlation") or {}
    out.append("")
    out.append(
        f"correlation: {corr.get('joined', 0)}/{corr.get('metrics_files', 0)} "
        f"metrics files joined"
    )
    for orphan in corr.get("orphans", []):
        out.append(f"  ORPHAN {orphan['file']}: {orphan['reason']}")
    return "\n".join(out)


def save_rollup(rollup: dict, path: str | Path) -> Path:
    """Atomically write the rollup JSON to ``path`` and return it."""
    from repro.util.atomic_io import atomic_write_text

    return atomic_write_text(Path(path), json.dumps(rollup, indent=2) + "\n")
