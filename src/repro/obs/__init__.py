"""Fleet observability: profiling, Prometheus export, batch rollups, live view.

This package is the cross-cutting observability layer on top of the
run-level telemetry (:mod:`repro.telemetry`) and the job service
(:mod:`repro.service`):

- :mod:`repro.obs.profile` — deterministic host-wall profiling of the
  flat-engine hot path, exported as collapsed-stack flamegraph files.
- :mod:`repro.obs.prom` — Prometheus textfile-collector snapshots of a
  :class:`~repro.telemetry.metrics.MetricsRegistry`.
- :mod:`repro.obs.batch` — the ``repro report --batch`` aggregator that
  joins a batch's service stream with its per-job metrics files.
- :mod:`repro.obs.top` — the ``repro top`` live batch view over the
  streamed ``service.jsonl``.

Everything here follows the repo's zero-cost contract (DESIGN.md §5.8):
observability off means dormant ``is None`` hooks and bit-identical
results; observability on never touches virtual clocks or op counts.
"""

from repro.obs.batch import BATCH_ROLLUP_SCHEMA, aggregate_batch, render_batch_rollup
from repro.obs.profile import PhaseProfiler, maybe_section
from repro.obs.prom import (
    parse_prom_text,
    render_prom_text,
    write_prom_snapshot,
)
from repro.obs.top import BatchView, read_stream, render_top, top_loop

__all__ = [
    "BATCH_ROLLUP_SCHEMA",
    "BatchView",
    "PhaseProfiler",
    "aggregate_batch",
    "maybe_section",
    "parse_prom_text",
    "read_stream",
    "render_batch_rollup",
    "render_prom_text",
    "render_top",
    "top_loop",
    "write_prom_snapshot",
]
