"""Deterministic kernel-level profiling of the flat-engine hot path.

:class:`PhaseProfiler` is an *instrumented* profiler, not a statistical
sampler: the virtual machine opens a root section per phase (the
``vm.profiler`` dormant hook, mirroring ``vm.tracer``) and the flat
engine opens nested sections around its kernels — deposition, rank-row
reduction, interpolation, the Boris push, migration partitioning.
Worker processes of the multicore backend time their handler bodies and
ship the totals back through :meth:`merge_worker_samples`, so attribution
reaches inside :mod:`repro.parallel_exec` workers too.

The profiler measures **host** wall time only.  It never reads or
charges the virtual clocks, so results, ``vm.elapsed()`` and ``vm.ops``
are bit-identical with the profiler on or off; with it off (the
``None`` default everywhere) the only residue is one dormant branch per
hook site.  Timings use :func:`time.perf_counter` and are therefore
machine-dependent — the *shape* of the profile is deterministic (same
sections, same counts for a given config), the durations are not.

Export is the collapsed-stack ("folded") format flamegraph tooling
consumes: one ``frame;frame;... value`` line per unique stack, with the
value in integer microseconds.  :meth:`export_folded` writes one file
per root phase plus a combined ``profile.folded``.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from time import perf_counter

from repro.util.atomic_io import atomic_write_text

__all__ = ["PhaseProfiler", "maybe_section"]

#: sub-frame under which worker-process handler timings are filed
WORKER_FRAME = "workers"


class PhaseProfiler:
    """Accumulates ``stack -> (count, host seconds)`` samples.

    The stack is a tuple of frame names rooted at the virtual machine's
    phase (``("scatter", "deposit")``, ``("gather", "workers",
    "gather_push")``, ...).  ``push``/``pop`` are the raw hooks the VM
    phase contextmanager drives; :meth:`section` is the convenience
    contextmanager engine code wraps kernels in.
    """

    def __init__(self) -> None:
        self.samples: dict[tuple[str, ...], list] = {}
        self._stack: list[str] = []
        self._starts: list[float] = []

    # -- raw hooks (driven by VirtualMachine.phase) --------------------
    def push(self, name: str) -> None:
        self._stack.append(name)
        self._starts.append(perf_counter())

    def pop(self, name: str) -> None:
        t1 = perf_counter()
        if not self._stack or self._stack[-1] != name:  # pragma: no cover
            raise RuntimeError(
                f"profiler section mismatch: popping {name!r}, "
                f"stack is {self._stack!r}"
            )
        self._stack.pop()
        t0 = self._starts.pop()
        self._record(tuple(self._stack) + (name,), 1, t1 - t0)

    def _record(self, stack: tuple[str, ...], count: int, wall: float) -> None:
        cell = self.samples.get(stack)
        if cell is None:
            self.samples[stack] = [count, wall]
        else:
            cell[0] += count
            cell[1] += wall

    # -- convenience ----------------------------------------------------
    @contextmanager
    def section(self, name: str):
        """Open a nested section; kernels in the flat engine use this."""
        self.push(name)
        try:
            yield
        finally:
            self.pop(name)

    def merge_worker_samples(self, samples: dict) -> None:
        """Fold worker-process handler totals under the current stack.

        ``samples`` maps handler name to ``[count, seconds]`` as drained
        from :meth:`repro.parallel_exec.pool.WorkerPool.drain_profile`.
        Frames land under ``<current stack>/workers/<handler>`` — the
        drain happens outside any phase, so the usual stack root is
        empty and the frames read ``workers;scatter`` etc.
        """
        base = tuple(self._stack) + (WORKER_FRAME,)
        for handler, (count, wall) in sorted(samples.items()):
            self._record(base + (str(handler),), int(count), float(wall))

    # -- views ----------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Host seconds across root sections (nested time not re-counted)."""
        return sum(w for s, (_, w) in self.samples.items() if len(s) == 1)

    def phase_totals(self) -> dict[str, float]:
        """Root-frame name -> accumulated host seconds."""
        out: dict[str, float] = {}
        for stack, (_, wall) in self.samples.items():
            if len(stack) == 1:
                out[stack[0]] = out.get(stack[0], 0.0) + wall
        return out

    def folded_lines(self, root: str | None = None) -> list[str]:
        """Collapsed-stack lines (``a;b value_us``), sorted by stack.

        ``root`` restricts output to stacks under one root frame.  To
        keep the flamegraph well-formed, each frame's value is its
        *self* time: accumulated wall minus the wall of its direct
        children, floored at zero (children are timed inside the parent,
        so nested time would otherwise be counted twice).
        """
        child_wall: dict[tuple[str, ...], float] = {}
        for stack, (_, wall) in self.samples.items():
            if len(stack) > 1:
                parent = stack[:-1]
                child_wall[parent] = child_wall.get(parent, 0.0) + wall
        lines = []
        for stack in sorted(self.samples):
            if root is not None and stack[0] != root:
                continue
            wall = self.samples[stack][1]
            self_wall = max(0.0, wall - child_wall.get(stack, 0.0))
            lines.append(f"{';'.join(stack)} {int(round(self_wall * 1e6))}")
        return lines

    def export_folded(self, directory) -> list[Path]:
        """Write ``<phase>.folded`` per root phase plus ``profile.folded``.

        Returns the written paths.  Writes are atomic; the directory is
        created if missing.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        roots = sorted({stack[0] for stack in self.samples})
        for root in roots:
            path = directory / f"{_safe_name(root)}.folded"
            atomic_write_text(path, "\n".join(self.folded_lines(root)) + "\n")
            written.append(path)
        combined = directory / "profile.folded"
        atomic_write_text(combined, "\n".join(self.folded_lines()) + "\n")
        written.append(combined)
        return written

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PhaseProfiler(stacks={len(self.samples)}, "
            f"total={self.total_seconds:.6f}s)"
        )


def _safe_name(frame: str) -> str:
    return "".join(c if (c.isalnum() or c in "-_.") else "_" for c in frame)


@contextmanager
def maybe_section(profiler, name: str):
    """``profiler.section(name)`` when attached, a no-op when ``None``.

    The flat engine wraps its kernels in this so the off path stays a
    single ``is None`` branch per kernel call.
    """
    if profiler is None:
        yield
    else:
        profiler.push(name)
        try:
            yield
        finally:
            profiler.pop(name)
