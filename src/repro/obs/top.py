"""Live batch view: tail a service stream and render it in place.

``repro top STREAM`` follows the live JSONL stream a scheduler writes
when given an obs directory (:meth:`ServiceTelemetry.stream_to`) and
renders a small refreshing dashboard: one row per job with state,
attempt, iteration progress and last-known load imbalance, plus batch
totals (pool size, queue depth, retries, cache hits, circuit state).

The reader is incremental and torn-line tolerant: a partially flushed
last line is left in the buffer until the writer completes it, so
tailing never crashes mid-batch.  The loop exits cleanly when the
closing ``summary`` record appears — a finished batch tears the
dashboard down by itself.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

__all__ = ["BatchView", "read_stream", "render_top", "top_loop"]

#: job states rendered as "active" (spinner-worthy) in the dashboard
_ACTIVE = ("running", "retrying", "queued")

#: display order: active jobs first, then terminal ones
_STATE_ORDER = {
    "running": 0,
    "retrying": 1,
    "queued": 2,
    "done": 3,
    "failed": 4,
    "cancelled": 5,
}


def read_stream(path: str | Path, *, offset: int = 0) -> tuple[list[dict], int]:
    """Parse complete JSONL records from ``path`` starting at ``offset``.

    Returns ``(records, new_offset)``; a torn (unterminated or
    half-written) last line is not consumed, so the caller can retry
    from ``new_offset`` after the writer's next flush.
    """
    path = Path(path)
    with path.open("rb") as fh:
        fh.seek(offset)
        blob = fh.read()
    records: list[dict] = []
    consumed = 0
    for line in blob.split(b"\n")[:-1]:  # everything before the last \n
        consumed += len(line) + 1
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            continue
        try:
            records.append(json.loads(text))
        except json.JSONDecodeError:
            # torn mid-line flush: stop before it, re-read next round
            consumed -= len(line) + 1
            break
    return records, offset + consumed


class BatchView:
    """Mutable fold of a service stream into a dashboard state."""

    def __init__(self) -> None:
        self.header: dict | None = None
        self.summary: dict | None = None
        self.jobs: dict[str, dict] = {}
        self.queue_depth = 0
        self.pool_size: int | None = None
        self.circuit_open = False
        self.retries = 0
        self.cache_hits = 0
        self.last_t = 0.0

    @property
    def finished(self) -> bool:
        """True once the closing summary record has been seen."""
        return self.summary is not None

    @property
    def batch_id(self) -> str | None:
        return (self.header or {}).get("batch_id")

    def _job(self, name: str) -> dict:
        return self.jobs.setdefault(
            name,
            {
                "state": "queued",
                "attempt": 0,
                "iteration": None,
                "total": None,
                "imbalance": None,
                "rate": None,  # iterations per stream-second
                "_rate_mark": None,  # (t, iteration) of last progress
                "wall": None,
                "cached": False,
            },
        )

    def apply(self, record: dict) -> None:
        """Fold one stream record into the view."""
        kind = record.get("type")
        if kind == "header":
            self.header = record
            return
        if kind == "summary":
            self.summary = record
            return
        if kind != "event":
            return
        t = float(record.get("t", self.last_t))
        self.last_t = max(self.last_t, t)
        self.queue_depth = int(record.get("queue_depth", self.queue_depth))
        name = record.get("kind")
        job = record.get("job")
        row = self._job(job) if isinstance(job, str) else None
        if row is not None and record.get("attempt") is not None:
            row["attempt"] = int(record["attempt"])
        if name == "job_launched" and row is not None:
            row["state"] = "running"
            row["_rate_mark"] = None
        elif name == "job_progress" and row is not None:
            row["state"] = "running"
            row["iteration"] = record.get("iteration")
            row["total"] = record.get("total", row["total"])
            if record.get("imbalance") is not None:
                row["imbalance"] = record["imbalance"]
            mark = row["_rate_mark"]
            if mark is not None and t > mark[0]:
                row["rate"] = (record.get("iteration", 0) - mark[1]) / (t - mark[0])
            row["_rate_mark"] = (t, record.get("iteration", 0))
        elif name == "job_done" and row is not None:
            row["state"] = "done"
            row["wall"] = record.get("wall")
            row["cached"] = bool(record.get("cached"))
        elif name == "job_retry" and row is not None:
            row["state"] = "retrying"
            self.retries += 1
        elif name == "job_failed" and row is not None:
            row["state"] = "failed"
        elif name == "job_cancelled" and row is not None:
            row["state"] = "cancelled"
        elif name in ("job_timeout", "heartbeat_lost", "worker_lost") and row is not None:
            row["state"] = "retrying"
        elif name == "pool_shrink":
            self.pool_size = int(record.get("size", 0))
        elif name == "circuit_open":
            self.circuit_open = True
        if name == "job_done" and record.get("cached"):
            self.cache_hits += 1

    def apply_all(self, records: list[dict]) -> None:
        for record in records:
            self.apply(record)


def _progress_cell(row: dict, width: int = 18) -> str:
    it, total = row["iteration"], row["total"]
    if it is None:
        return "-".center(width)
    if not total:
        return f"it {it}".center(width)
    frac = min(max(it / total, 0.0), 1.0)
    filled = int(round(frac * (width - 8)))
    bar = "#" * filled + "." * ((width - 8) - filled)
    return f"[{bar}] {it}/{total}"


def render_top(view: BatchView) -> str:
    """Render the current batch state as a dashboard string."""
    out: list[str] = []
    head = view.header or {}
    title = "repro top"
    if view.batch_id:
        title += f" — {view.batch_id}"
    out.append(title)
    states = [row["state"] for row in view.jobs.values()]
    running = sum(1 for s in states if s in _ACTIVE)
    done = sum(1 for s in states if s == "done")
    failed = sum(1 for s in states if s in ("failed", "cancelled"))
    pool = view.pool_size if view.pool_size is not None else head.get("workers", "?")
    out.append(
        f"jobs {head.get('jobs', len(view.jobs))}: {running} active, {done} done, "
        f"{failed} failed   queue {view.queue_depth}   pool {pool}"
        + ("   CIRCUIT OPEN" if view.circuit_open else "")
    )
    out.append(
        f"retries {view.retries}   cache hits {view.cache_hits}   "
        f"t +{view.last_t:.1f}s"
    )
    out.append("")
    header = (
        f"{'job':<22s} {'state':<9s} {'att':>3s} {'progress':<26s} "
        f"{'it/s':>7s} {'imbal':>6s}"
    )
    out.append(header)
    out.append("-" * len(header))
    rows = sorted(
        view.jobs.items(),
        key=lambda kv: (_STATE_ORDER.get(kv[1]["state"], 9), kv[0]),
    )
    for name, row in rows:
        rate = f"{row['rate']:.1f}" if row["rate"] else "-"
        imb = f"{row['imbalance']:.2f}" if row["imbalance"] is not None else "-"
        cell = _progress_cell(row, width=18)
        if row["state"] == "done":
            wall = f"{row['wall']:.2f}s" if row["wall"] is not None else ""
            cell = ("cached " if row["cached"] else "done ") + wall
        out.append(
            f"{name:<22.22s} {row['state']:<9s} {row['attempt']:>3d} "
            f"{cell:<26.26s} {rate:>7s} {imb:>6s}"
        )
    if view.finished:
        out.append("")
        out.append("batch complete")
    return "\n".join(out)


def top_loop(
    path: str | Path,
    *,
    interval: float = 0.5,
    once: bool = False,
    timeout: float | None = None,
    out=None,
) -> BatchView:
    """Tail ``path`` and render the dashboard until the batch finishes.

    Waits for the stream file to appear (the scheduler creates it at
    batch start), refreshes in place every ``interval`` seconds, and
    returns the final :class:`BatchView` when the summary record lands.
    ``once=True`` renders the current state a single time and returns —
    the non-interactive mode CI smoke-tests use.  ``timeout`` bounds the
    total wait (seconds); ``None`` waits indefinitely.
    """
    out = sys.stdout if out is None else out
    path = Path(path)
    view = BatchView()
    offset = 0
    deadline = None if timeout is None else time.monotonic() + timeout
    interactive = not once and out.isatty() if hasattr(out, "isatty") else False
    while True:
        if path.exists():
            records, offset = read_stream(path, offset=offset)
            view.apply_all(records)
            frame = render_top(view)
            if interactive:
                # clear + home, then the frame: flicker-free enough for a
                # dashboard without pulling in curses
                out.write("\x1b[H\x1b[2J" + frame + "\n")
            else:
                out.write(frame + "\n")
            out.flush()
            if view.finished or once:
                return view
        elif once:
            out.write(f"(waiting for {path} — no stream yet)\n")
            out.flush()
            return view
        if deadline is not None and time.monotonic() >= deadline:
            return view
        time.sleep(interval)
