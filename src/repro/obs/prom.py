"""Prometheus textfile-collector snapshots of a ``MetricsRegistry``.

The node_exporter *textfile collector* scrapes ``*.prom`` files from a
directory; anything that can atomically write a file in the exposition
format is a Prometheus exporter with zero new dependencies.  This module
renders :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot` into
that format:

- counters  -> ``# TYPE name counter`` + one sample
- gauges    -> ``# TYPE name gauge`` + one sample
- histograms (the registry's O(1) summaries) -> ``name_count``,
  ``name_sum`` (both counters) and ``name_min``/``name_max``/
  ``name_mean`` gauges

Registry names use dots (``comm.scatter.bytes``); Prometheus metric
names cannot, so every non-``[a-zA-Z0-9_:]`` character maps to ``_`` and
a configurable prefix (default ``repro_``) namespaces the fleet.  Labels
(e.g. ``batch``) are attached to every sample.  Writes go through
:func:`~repro.util.atomic_io.atomic_write_text`, so a scraper never sees
a torn file.

:func:`parse_prom_text` is a minimal exposition-format reader used by
the tests and the CI smoke job to prove the output parses.
"""

from __future__ import annotations

from pathlib import Path

from repro.util.atomic_io import atomic_write_text

__all__ = [
    "render_prom_text",
    "write_prom_snapshot",
    "parse_prom_text",
]


def _prom_name(name: str, prefix: str) -> str:
    safe = "".join(c if (c.isalnum() or c in "_:") else "_" for c in name)
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return prefix + safe


def _label_text(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prom_text(snapshot: dict, *, prefix: str = "repro_", labels: dict | None = None) -> str:
    """Exposition-format text for a registry snapshot.

    ``snapshot`` is ``MetricsRegistry.snapshot()`` output:
    ``{name: {"kind": "counter"|"gauge"|"histogram", "value": ...}}``.
    """
    label_text = _label_text(labels)
    lines: list[str] = []

    def emit(name: str, kind: str, value: float) -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{label_text} {_format_value(value)}")

    for name in sorted(snapshot):
        entry = snapshot[name]
        kind, value = entry["kind"], entry["value"]
        base = _prom_name(name, prefix)
        if kind == "counter":
            emit(base, "counter", value)
        elif kind == "gauge":
            if value is not None:  # never-set gauges have no sample to expose
                emit(base, "gauge", value)
        elif kind == "histogram":
            emit(base + "_count", "counter", value["count"])
            emit(base + "_sum", "counter", value["sum"])
            for stat in ("min", "max", "mean"):
                if value[stat] is not None:
                    emit(base + "_" + stat, "gauge", value[stat])
        else:  # pragma: no cover - registry kinds are closed
            raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prom_snapshot(
    directory,
    registry,
    *,
    name: str = "repro.prom",
    prefix: str = "repro_",
    labels: dict | None = None,
) -> Path:
    """Atomically write ``<directory>/<name>`` from a registry (or snapshot).

    Accepts a :class:`~repro.telemetry.metrics.MetricsRegistry` or a
    pre-taken snapshot dict; creates the directory if missing and
    returns the written path.
    """
    snapshot = registry.snapshot() if hasattr(registry, "snapshot") else dict(registry)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / name
    atomic_write_text(path, render_prom_text(snapshot, prefix=prefix, labels=labels))
    return path


def parse_prom_text(text: str) -> dict[str, dict]:
    """Parse exposition text back to ``{name: {"kind", "samples"}}``.

    Minimal reader for tests/CI: understands ``# TYPE`` lines, optional
    ``{label="..."}`` blocks, and float values.  Raises ``ValueError``
    on anything malformed — which is the point: CI feeds the writer's
    output through this to prove a scraper would accept it.
    """
    out: dict[str, dict] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                out.setdefault(parts[2], {"kind": parts[3], "samples": {}})
            elif parts[1:2] == ["HELP"]:
                continue
            else:
                raise ValueError(f"line {lineno}: malformed comment {raw!r}")
            continue
        body, _, value_text = line.rpartition(" ")
        if not body:
            raise ValueError(f"line {lineno}: no value in {raw!r}")
        name, labels = _split_labels(body, lineno)
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(f"line {lineno}: bad value {value_text!r}") from None
        if name not in out:
            raise ValueError(f"line {lineno}: sample {name!r} has no # TYPE line")
        out[name]["samples"][labels] = value
    return out


def _split_labels(body: str, lineno: int) -> tuple[str, tuple]:
    if "{" not in body:
        if not body.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"line {lineno}: bad metric name {body!r}")
        return body, ()
    name, _, rest = body.partition("{")
    if not rest.endswith("}"):
        raise ValueError(f"line {lineno}: unterminated label block in {body!r}")
    inner = rest[:-1]
    labels = []
    for item in filter(None, inner.split(",")):
        key, eq, val = item.partition("=")
        if eq != "=" or not (val.startswith('"') and val.endswith('"')):
            raise ValueError(f"line {lineno}: bad label {item!r}")
        labels.append((key, val[1:-1]))
    return name, tuple(sorted(labels))
