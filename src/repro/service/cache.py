"""Content-addressed, integrity-checked result cache.

Entries live at ``<root>/<key[:2]>/<key>.json`` — the key is the job's
content hash (:func:`~repro.service.jobs.job_key`), so identical jobs
across batches, machines, and time share one entry.  Each entry wraps
its payload (a ``SimulationResult.to_dict()`` document) with a schema
marker, its own key, and a sha256 over the payload's canonical JSON::

    {"schema": "repro-cache/1", "key": "<hex>", "sha256": "<hex>",
     "payload": {...}}

Writes are atomic (:func:`~repro.util.atomic_io.atomic_write_json`), so
a crash mid-write never leaves a readable-but-wrong file.  Reads verify
everything — parseability, schema, key-vs-location, digest-vs-payload —
and a failed check *quarantines* the entry (renamed to
``<name>.quarantined.<n>`` beside the original) rather than deleting
it, so corruption is debuggable after the fact; the read then reports a
miss and the scheduler recomputes.  JSON float round-tripping is exact,
so a cache hit is bit-identical to the fresh run that produced it.
"""

from __future__ import annotations

import json
import hashlib
from pathlib import Path

from repro.service.jobs import canonical_json
from repro.util.atomic_io import atomic_write_json
from repro.util.errors import CacheCorruption

__all__ = ["ResultCache", "CACHE_SCHEMA", "payload_digest"]

#: Schema marker inside every cache entry.
CACHE_SCHEMA = "repro-cache/1"


def payload_digest(payload: dict) -> str:
    """sha256 hex digest of a payload's canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


class ResultCache:
    """Filesystem result cache keyed by job content hash.

    Attributes
    ----------
    hits / misses:
        Counters over this instance's lifetime.
    quarantined:
        ``(path, reason)`` log of entries that failed verification.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined: list[tuple[str, str]] = []

    def path_for(self, key: str) -> Path:
        """Entry location for ``key`` (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def put(self, key: str, payload: dict) -> Path:
        """Atomically install ``payload`` under ``key``; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "sha256": payload_digest(payload),
            "payload": payload,
        }
        return atomic_write_json(path, entry)

    def get(self, key: str) -> dict | None:
        """Verified payload for ``key``, or ``None`` (miss / quarantined).

        Every failure mode — unreadable JSON, wrong schema, key not
        matching the location, digest not matching the payload — counts
        as a miss after the offending file is quarantined, so a single
        flipped bit costs one recompute, never a wrong result.
        """
        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            payload = self._verify(path, key)
        except CacheCorruption as exc:
            self._quarantine(path, exc.reason)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def _verify(self, path: Path, key: str) -> dict:
        try:
            entry = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CacheCorruption(str(path), f"unreadable JSON ({exc})")
        if not isinstance(entry, dict):
            raise CacheCorruption(str(path), "entry is not a JSON object")
        if entry.get("schema") != CACHE_SCHEMA:
            raise CacheCorruption(
                str(path), f"schema {entry.get('schema')!r} != {CACHE_SCHEMA!r}"
            )
        if entry.get("key") != key:
            raise CacheCorruption(
                str(path), f"stored key {entry.get('key')!r} does not match location"
            )
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            raise CacheCorruption(str(path), "payload is not a JSON object")
        digest = payload_digest(payload)
        if digest != entry.get("sha256"):
            raise CacheCorruption(
                str(path),
                f"payload digest {digest[:12]}… does not match stored "
                f"{str(entry.get('sha256'))[:12]}…",
            )
        return payload

    def _quarantine(self, path: Path, reason: str) -> Path:
        """Move a corrupt entry aside (never delete) and log it."""
        n = 0
        while True:
            target = path.with_name(f"{path.name}.quarantined.{n}")
            if not target.exists():
                break
            n += 1
        path.replace(target)
        self.quarantined.append((str(target), reason))
        return target

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": len(self.quarantined),
        }

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, quarantined={len(self.quarantined)})"
        )
