"""Worker-process side of the job service.

:func:`worker_main` is the target of each supervised process the
scheduler forks: it builds (or resumes) the simulation, runs it one
iteration at a time, and speaks a small message protocol back over its
pipe::

    ("started",   {"pid": ..., "iteration": k})   # k > 0 on a resume
    ("heartbeat", {"iteration": k, "total": n,    # after every iteration
                   "imbalance": x})
    ("done",      {"payload": result.to_dict()})
    ("failed",    {"error": <picklable ReproError>})

Heartbeats double as progress reports (schema ``repro-service/2``):
``iteration``/``total`` give the live view its progress bars and
``imbalance`` is the last-known max/mean particle imbalance, computed
from the already-materialized per-rank counts — an O(p) read, never a
simulation step.

The scheduler passes a *correlation* identity
(``{"batch_id", "job_id", "attempt"}``) that the worker stamps onto the
simulation, so the run's telemetry header, trace export, checkpoints,
and result document all join with the batch's service stream (DESIGN.md
§5.8).  With an observability directory the worker additionally enables
run telemetry and drops ``job-<id12>-a<attempt>.metrics.jsonl`` /
``.trace.json`` files next to the stream.

Progress is checkpointed to ``<workdir>/<key>.ck.npz`` every
``checkpoint_every`` iterations, so when the supervisor kills a hung
worker (or the worker crashes) the retry resumes from the last
checkpoint via the exact-resume contract — the completed job's result
is bit-identical to an uninterrupted run.

A job's ``chaos`` block sabotages the worker itself (the chaos suite's
fault injection at the *process* level, next to
:mod:`repro.machine.faults` at the *virtual machine* level):
``{"kind": "crash", "at_iteration": k, "attempts": [0]}`` SIGKILLs the
process before iteration ``k`` on the listed attempts; ``"hang"`` stops
heartbeating and sleeps until the supervisor's heartbeat timeout kills
it; ``{"kind": "slow_start", "seconds": s}`` sleeps *before* the
simulation is built, modelling an expensive construction/restore — the
supervisor must not count that window as heartbeat silence.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

from repro.core.metrics import load_imbalance, particle_counts
from repro.machine.faults import FaultPlan
from repro.pic.simulation import Simulation, config_from_dict
from repro.service.jobs import JobSpec
from repro.util.errors import JobError, ReproError

__all__ = ["worker_main", "scratch_checkpoint", "job_artifact_stem"]

#: Sleep horizon of a "hang" sabotage — far beyond any heartbeat budget.
_HANG_SECONDS = 3600.0


def scratch_checkpoint(workdir: str | Path, key: str) -> Path:
    """Location of a job's in-progress checkpoint in the batch workdir."""
    return Path(workdir) / f"{key}.ck.npz"


def job_artifact_stem(job_id: str, attempt: int) -> str:
    """File stem of one attempt's telemetry artifacts in the obs dir."""
    return f"job-{job_id[:12]}-a{int(attempt)}"


def _remaining_plan(plan_dict: dict | None, resume_iteration: int) -> FaultPlan | None:
    """The fault plan a resumed attempt should reinstall.

    Events strictly before the checkpoint iteration already fired and
    were folded into the checkpointed history (a recovered machine
    checkpoints in its shrunk form), so replaying them would double the
    fault.  Events at or after the resume point have not happened in the
    resumed timeline and fire normally.
    """
    if plan_dict is None:
        return None
    plan = FaultPlan.from_dict(plan_dict)
    if resume_iteration <= 0:
        return plan
    events = tuple(
        e
        for e in plan.events
        if e.iteration is None or e.iteration >= resume_iteration
    )
    return FaultPlan(
        events=events,
        retry_timeout=plan.retry_timeout,
        detect_timeout=plan.detect_timeout,
        max_retries=plan.max_retries,
    )


def _maybe_sabotage(chaos: dict | None, iteration: int, attempt: int) -> None:
    """Apply the job's chaos block at its trigger point (tests only)."""
    if not chaos:
        return
    if attempt not in chaos.get("attempts", [0]):
        return
    if iteration != int(chaos.get("at_iteration", 0)):
        return
    if chaos["kind"] == "crash":
        # a real kill -9: no atexit, no cleanup, the pipe just goes EOF
        os.kill(os.getpid(), signal.SIGKILL)
    elif chaos["kind"] == "hang":
        time.sleep(_HANG_SECONDS)


def _last_imbalance(sim: Simulation) -> float | None:
    """Max/mean particle imbalance of the live decomposition (O(p))."""
    try:
        counts = particle_counts(sim.pic.particles)
        if counts.sum() == 0:
            return None
        return round(float(load_imbalance(counts)), 6)
    except Exception:  # noqa: BLE001 - progress decoration must never kill a job
        return None


def worker_main(
    conn,
    spec_dict: dict,
    workdir: str,
    checkpoint_every: int,
    attempt: int,
    correlation: dict | None = None,
    obs_dir: str | None = None,
) -> None:
    """Run one job attempt; every exit path sends a message (or dies loudly)."""
    spec = JobSpec.from_dict(spec_dict)
    label = spec.name
    ck = scratch_checkpoint(workdir, spec.key)
    try:
        chaos = spec.chaos
        if (
            chaos
            and chaos.get("kind") == "slow_start"
            and attempt in chaos.get("attempts", [0])
        ):
            # simulate an expensive Simulation build/restore: no message
            # has been sent yet, so this must not trip the heartbeat
            # watchdog (it only arms at the first message)
            time.sleep(float(chaos.get("seconds", 0.5)))
        if ck.exists():
            sim = Simulation.from_checkpoint(ck)
            plan = _remaining_plan(spec.fault_plan, sim.iteration)
        else:
            sim = Simulation(config_from_dict(spec.config))
            plan = FaultPlan.from_dict(spec.fault_plan) if spec.fault_plan else None
        if plan is not None:
            sim.install_faults(plan)
        if correlation is not None:
            sim.set_correlation(correlation)
        if obs_dir is not None:
            sim.enable_telemetry()
        conn.send(("started", {"pid": os.getpid(), "iteration": sim.iteration}))
        while sim.iteration < spec.iterations:
            _maybe_sabotage(spec.chaos, sim.iteration, attempt)
            sim.run(
                1, checkpoint_every=checkpoint_every, checkpoint_path=ck
            )
            conn.send(
                (
                    "heartbeat",
                    {
                        "iteration": sim.iteration,
                        "total": spec.iterations,
                        "imbalance": _last_imbalance(sim),
                    },
                )
            )
        result = sim.result()
        if obs_dir is not None and sim.telemetry is not None:
            stem = job_artifact_stem(
                correlation["job_id"] if correlation else spec.key, attempt
            )
            sim.telemetry.save_metrics(Path(obs_dir) / f"{stem}.metrics.jsonl")
            sim.telemetry.save_trace(Path(obs_dir) / f"{stem}.trace.json")
        sim.close()
        conn.send(("done", {"payload": result.to_dict()}))
    except ReproError as exc:
        conn.send(("failed", {"error": exc}))
    except Exception as exc:  # noqa: BLE001 - ship *everything* to the supervisor
        conn.send(
            ("failed", {"error": JobError(label, f"{type(exc).__name__}: {exc}", attempt)})
        )
    finally:
        conn.close()
