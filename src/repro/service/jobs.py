"""Job model for the fault-tolerant multi-run service.

A *job* is one simulation run: a serialized
:class:`~repro.pic.simulation.SimulationConfig`, an iteration budget,
an optional fault plan (virtual-machine faults injected *inside* the
run), and an optional ``chaos`` block (OS-level sabotage of the worker
process itself — used by the chaos test-suite to kill or hang workers).

Every job has a content hash, :func:`job_key`: the sha256 of the
canonical JSON of everything that determines the result — the full
config (model constants included), the iteration count, and the fault
plan.  Two jobs with the same key produce bit-identical results, so the
key doubles as the result-cache address (:mod:`repro.service.cache`).
``chaos`` is deliberately *excluded* from the key: killing the worker
process does not change the result (the exact-resume contract of
DESIGN.md §5.2 makes the retried run land on the same bits), it only
changes how the scheduler had to get there.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.pic.simulation import config_from_dict, config_to_dict
from repro.util import require

__all__ = [
    "JobSpec",
    "JobRecord",
    "JobState",
    "job_key",
    "canonical_json",
    "BATCH_SCHEMA",
]

#: Schema marker of batch-report documents (``repro jobs`` input).
BATCH_SCHEMA = "repro-batch/1"


class JobState:
    """Lifecycle states of a job inside the scheduler."""

    PENDING = "pending"  #: queued, not yet launched
    WAITING = "waiting"  #: failed attempt, waiting out its backoff delay
    RUNNING = "running"  #: a worker process is executing it
    DONE = "done"  #: completed (fresh run or cache hit)
    FAILED = "failed"  #: retry budget exhausted
    CANCELLED = "cancelled"  #: dropped by the circuit breaker

    ALL = (PENDING, WAITING, RUNNING, DONE, FAILED, CANCELLED)
    #: states a scheduler run terminates jobs in
    TERMINAL = (DONE, FAILED, CANCELLED)


def canonical_json(obj) -> str:
    """Canonical JSON text: sorted keys, minimal separators.

    Both the job key and the cache integrity digest hash this form, so
    key-order differences in hand-written job files never split the
    cache.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class JobSpec:
    """One unit of work for the job service.

    Attributes
    ----------
    config:
        ``SimulationConfig`` in its dict form (:func:`config_to_dict`
        output or a hand-written subset; validated on construction).
    iterations:
        Iterations to run (>= 1).
    name:
        Display name in reports; defaults to a key prefix.
    priority:
        Higher runs earlier; ties keep submission order.
    fault_plan:
        Optional ``FaultPlan`` dict injected into the run's virtual
        machine (part of the job key — it changes the result).
    chaos:
        Optional worker sabotage, ``{"kind":
        "crash"|"hang"|"slow_start", "at_iteration": k, "seconds": s,
        "attempts": [0, ...]}`` — *not* part of the job key (it never
        changes the result, only the path to it).
    """

    config: dict
    iterations: int
    name: str = ""
    priority: int = 0
    fault_plan: dict | None = None
    chaos: dict | None = None

    def __post_init__(self) -> None:
        require(self.iterations >= 1, "job iterations must be >= 1")
        # validate eagerly so a typo'd sweep fails at submit, not in a
        # worker three retries deep
        cfg = config_from_dict(self.config)
        self.config = config_to_dict(cfg, full_model=True)
        if self.fault_plan is not None:
            from repro.machine.faults import FaultPlan

            self.fault_plan = FaultPlan.from_dict(self.fault_plan).to_dict()
        if self.chaos is not None:
            kind = self.chaos.get("kind")
            require(
                kind in ("crash", "hang", "slow_start"),
                f"chaos kind must be 'crash', 'hang', or 'slow_start', "
                f"got {kind!r}",
            )
        if not self.name:
            self.name = self.key[:12]

    @property
    def key(self) -> str:
        """The job's content hash (cache address); see :func:`job_key`."""
        return job_key(self)

    def to_dict(self) -> dict:
        out: dict = {
            "config": self.config,
            "iterations": self.iterations,
            "name": self.name,
            "priority": self.priority,
        }
        if self.fault_plan is not None:
            out["fault_plan"] = self.fault_plan
        if self.chaos is not None:
            out["chaos"] = self.chaos
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        known = {"config", "iterations", "name", "priority", "fault_plan", "chaos"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown job keys: {sorted(unknown)}")
        if "config" not in data or "iterations" not in data:
            raise ValueError("a job needs at least 'config' and 'iterations'")
        return cls(
            config=dict(data["config"]),
            iterations=int(data["iterations"]),
            name=str(data.get("name", "")),
            priority=int(data.get("priority", 0)),
            fault_plan=data.get("fault_plan"),
            chaos=data.get("chaos"),
        )


def job_key(spec: JobSpec) -> str:
    """sha256 over the canonical JSON of everything result-determining.

    The config is canonicalized through
    ``config_from_dict``/``config_to_dict`` (``full_model=True``) before
    hashing, so presets vs. spelled-out model constants, default-valued
    fields, and dict key order all collapse to one key.
    """
    payload = {
        "config": config_to_dict(config_from_dict(spec.config), full_model=True),
        "iterations": int(spec.iterations),
        "fault_plan": spec.fault_plan,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


@dataclass
class JobRecord:
    """Mutable supervision state of one job inside a batch.

    The scheduler owns these; :meth:`to_dict` is what lands in the batch
    report (``repro jobs`` renders it).  ``payload`` holds the full
    result document (``SimulationResult.to_dict()``) for jobs that
    completed — reports keep only the totals/final-state summary.
    """

    spec: JobSpec
    state: str = JobState.PENDING
    attempt: int = 0  #: zero-based attempt currently/last running
    cached: bool = False  #: served from the result cache
    wall: float = 0.0  #: wall seconds across all attempts
    error: str | None = None  #: terminal failure message
    retries: list[dict] = field(default_factory=list)  #: per-retry log
    payload: dict | None = None  #: full result document (DONE only)
    resumed_from: int | None = None  #: checkpoint iteration a retry resumed at

    @property
    def key(self) -> str:
        return self.spec.key

    @property
    def name(self) -> str:
        return self.spec.name

    def to_dict(self) -> dict:
        cfg = self.spec.config
        out = {
            "name": self.name,
            "key": self.key,
            "state": self.state,
            "attempts": self.attempt + (0 if self.state == JobState.PENDING else 1),
            "cached": self.cached,
            "wall": round(self.wall, 6),
            "priority": self.spec.priority,
            "iterations": self.spec.iterations,
            "config": {
                k: cfg.get(k)
                for k in ("nx", "ny", "nparticles", "p", "distribution", "seed")
            },
            "faulty": self.spec.fault_plan is not None,
            "retries": list(self.retries),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.resumed_from is not None:
            out["resumed_from"] = self.resumed_from
        if self.payload is not None:
            out["totals"] = self.payload.get("totals")
            out["final_state"] = self.payload.get("final_state")
        return out
