"""Job-file parsing: explicit job lists and sweep grammar expansion.

``repro submit FILE.json`` accepts three shapes:

* a bare JSON **list** of job dicts (``config`` + ``iterations`` each);
* ``{"jobs": [...]}`` — same list, with room for sibling keys;
* a **sweep**: ``{"base": {<config fields>}, "iterations": N,
  "sweep": {"seed": [0, 1, 2], "p": [4, 8]}}`` — the cartesian product
  of the swept axes applied over the base config.  Axis order in the
  file is the nesting order (last axis varies fastest), and each
  expanded job is named ``<name>-seed=0-p=4`` so reports stay legible.

Swept keys address ``SimulationConfig`` fields; ``iterations`` may also
be swept (it is a job field, not a config field).  Jobs and sweeps can
carry ``fault_plan`` / ``chaos`` / ``priority`` blocks that apply to
every expanded job.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path

from repro.service.jobs import JobSpec

__all__ = ["load_jobs", "expand_jobs"]


def load_jobs(path: str | Path) -> list[JobSpec]:
    """Parse a job file into specs; raises ``ValueError`` on bad shape."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"job file {path} is not valid JSON: {exc}") from exc
    return expand_jobs(data)


def expand_jobs(data) -> list[JobSpec]:
    """Expand a parsed job document (list, ``jobs``, or sweep) to specs."""
    if isinstance(data, list):
        return [_one_job(item, i) for i, item in enumerate(data)]
    if not isinstance(data, dict):
        raise ValueError("a job file must be a JSON list or object")
    if "jobs" in data:
        jobs = data["jobs"]
        if not isinstance(jobs, list):
            raise ValueError("'jobs' must be a list")
        return [_one_job(item, i) for i, item in enumerate(jobs)]
    if "sweep" in data:
        return _expand_sweep(data)
    raise ValueError(
        "job file needs a top-level list, a 'jobs' list, or a 'base'+'sweep' pair"
    )


def _one_job(item, index: int) -> JobSpec:
    if not isinstance(item, dict):
        raise ValueError(f"job #{index} is not a JSON object")
    try:
        return JobSpec.from_dict(item)
    except (ValueError, TypeError) as exc:
        raise ValueError(f"job #{index}: {exc}") from exc


def _expand_sweep(data: dict) -> list[JobSpec]:
    known = {"base", "sweep", "iterations", "name", "priority", "fault_plan", "chaos"}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown sweep keys: {sorted(unknown)}")
    base = data.get("base", {})
    if not isinstance(base, dict):
        raise ValueError("'base' must be a config object")
    sweep = data["sweep"]
    if not isinstance(sweep, dict) or not sweep:
        raise ValueError("'sweep' must be a non-empty object of axis: [values]")
    for axis, values in sweep.items():
        if not isinstance(values, list) or not values:
            raise ValueError(f"sweep axis {axis!r} must be a non-empty list")
    stem = str(data.get("name", "sweep"))
    axes = list(sweep.items())
    jobs: list[JobSpec] = []
    for combo in itertools.product(*(values for _, values in axes)):
        config = dict(base)
        iterations = data.get("iterations")
        for (axis, _), value in zip(axes, combo):
            if axis == "iterations":
                iterations = value
            else:
                config[axis] = value
        if iterations is None:
            raise ValueError(
                "sweep needs 'iterations' (top-level or as a swept axis)"
            )
        suffix = "-".join(
            f"{axis}={value}" for (axis, _), value in zip(axes, combo)
        )
        try:
            jobs.append(
                JobSpec(
                    config=config,
                    iterations=int(iterations),
                    name=f"{stem}-{suffix}",
                    priority=int(data.get("priority", 0)),
                    fault_plan=data.get("fault_plan"),
                    chaos=data.get("chaos"),
                )
            )
        except (ValueError, TypeError) as exc:
            raise ValueError(f"sweep point {suffix}: {exc}") from exc
    return jobs
