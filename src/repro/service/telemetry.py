"""Batch-level telemetry for the job service.

Mirrors the run-level :mod:`repro.telemetry` shape one level up: a
:class:`ServiceTelemetry` collects an ordered stream of scheduler
events (launches, progress, heartbeats lost, retries, worker deaths,
cache hits and quarantines, pool shrinks, circuit-breaker trips) plus a
:class:`~repro.telemetry.metrics.MetricsRegistry` of batch-wide
counters and the queue-depth gauge, and writes them as JSONL — schema
``repro-service/2``: a ``header`` line, ``event`` lines in occurrence
order, and a closing ``summary`` with the registry snapshot.

Timestamps follow the observability contract (DESIGN.md §5.8): every
event's ``t`` is a ``time.monotonic()`` delta from batch start, so
wall-clock steps (NTP, suspend) can never produce negative or jumping
values mid-stream; the absolute wall-clock start lives in the header
only (``started_at``, ``time.time()``).  Schema ``/2`` additionally
carries the batch's correlation identity: ``batch_id`` in the header and
``job_id``/``attempt`` on every job-scoped event, so the stream joins
with per-job metrics, traces, checkpoints and result documents.

Unlike run telemetry there is no zero-cost clause to honour — the
scheduler lives entirely off the virtual clocks — so the stream is
always recorded and saving it is opt-in (``repro submit --metrics``).
With :meth:`stream_to` the stream is *also* appended live, line by
flushed line, which is what ``repro top`` tails.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["ServiceTelemetry", "SERVICE_SCHEMA"]

#: Schema marker on the first line of every service metrics stream.
SERVICE_SCHEMA = "repro-service/2"

#: minimum seconds between two job_progress events for the same job
_PROGRESS_EVERY = 0.2


class ServiceTelemetry:
    """Event stream + metrics registry for one scheduler batch."""

    def __init__(
        self,
        *,
        jobs: int,
        workers: int,
        params: dict | None = None,
        batch_id: str | None = None,
    ) -> None:
        self.jobs = int(jobs)
        self.workers = int(workers)
        self.params = dict(params or {})
        self.batch_id = batch_id
        self.registry = MetricsRegistry()
        self.records: list[dict] = []
        self.started_at = time.time()
        self._t0 = time.monotonic()
        self._queue_depth = 0
        self._stream = None
        self._last_progress: dict[str, float] = {}

    # ------------------------------------------------------------------
    # live streaming
    # ------------------------------------------------------------------
    def stream_to(self, path: str | Path) -> Path:
        """Append the stream live to ``path`` (header now, events as they
        happen, summary at :meth:`close_stream`).

        Every line is flushed immediately so a tailing ``repro top`` sees
        events while the batch runs.  The final :meth:`save` to the same
        path (done by :meth:`close_stream`) rewrites it atomically, so a
        crash mid-batch leaves a valid-but-summaryless stream, never a
        torn line.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._stream = path.open("w", encoding="utf-8")
        self._emit(self.header())
        return path

    def _emit(self, record: dict) -> None:
        if self._stream is not None:
            self._stream.write(json.dumps(record) + "\n")
            self._stream.flush()

    def close_stream(self) -> Path | None:
        """Finish the live stream: append the summary, then atomically
        rewrite the whole file (idempotent; returns the path or None)."""
        if self._stream is None:
            return None
        self._emit(self.summary_record())
        path = Path(self._stream.name)
        self._stream.close()
        self._stream = None
        return self.save(path)

    # ------------------------------------------------------------------
    def set_queue_depth(self, depth: int) -> None:
        """Update the queue-depth gauge (stamped onto subsequent events)."""
        self._queue_depth = int(depth)
        self.registry.gauge("queue.depth").set(depth)

    def event(self, kind: str, **fields) -> dict:
        """Record one scheduler event; returns the stored record."""
        record = {
            "type": "event",
            "kind": kind,
            "t": round(time.monotonic() - self._t0, 6),
            "queue_depth": self._queue_depth,
            **fields,
        }
        self.records.append(record)
        self._emit(record)
        return record

    def _job_event(self, kind: str, job, **fields) -> dict:
        """Event stamped with the job's correlation identity.

        ``job`` is anything with ``name``/``key``/``attempt`` (a
        ``JobRecord``); plain strings are kept working for tests.
        """
        if not isinstance(job, str):
            fields.setdefault("job_id", job.key)
            fields.setdefault("attempt", int(job.attempt))
            job = job.name
        return self.event(kind, job=job, **fields)

    # convenience wrappers keeping counter names in one place ------------
    def on_launch(self, job, attempt: int) -> None:
        self.registry.counter("jobs.launched").inc()
        self._job_event("job_launched", job, attempt=int(attempt))

    def on_heartbeat(
        self,
        job,
        iteration: int,
        *,
        total: int | None = None,
        imbalance: float | None = None,
    ) -> None:
        self.registry.counter("heartbeats.received").inc()
        if imbalance is not None:
            self.registry.gauge("jobs.imbalance.last").set(imbalance)
        # throttle the stream: one progress event per job per
        # _PROGRESS_EVERY seconds, plus always the final iteration
        name = job if isinstance(job, str) else job.name
        now = time.monotonic()
        final = total is not None and iteration >= total
        if not final and now - self._last_progress.get(name, -1.0) < _PROGRESS_EVERY:
            return
        self._last_progress[name] = now
        fields: dict = {"iteration": int(iteration)}
        if total is not None:
            fields["total"] = int(total)
        if imbalance is not None:
            fields["imbalance"] = round(float(imbalance), 6)
        self._job_event("job_progress", job, **fields)

    def on_done(self, job, wall: float, cached: bool) -> None:
        self.registry.counter("jobs.completed").inc()
        if cached:
            self.registry.counter("cache.hits").inc()
        self._job_event("job_done", job, wall=round(wall, 6), cached=cached)

    def on_retry(self, job, attempt: int, reason: str, delay: float) -> None:
        self.registry.counter("jobs.retries").inc()
        # ``attempt`` is the upcoming attempt (as in schema /1); the
        # explicit value wins over the record's correlation default
        self._job_event(
            "job_retry", job, attempt=int(attempt), reason=reason,
            delay=round(delay, 6),
        )

    def on_failed(self, job, reason: str) -> None:
        self.registry.counter("jobs.failed").inc()
        self._job_event("job_failed", job, reason=reason)

    def on_timeout(self, job, limit: float, elapsed: float) -> None:
        self.registry.counter("jobs.timeouts").inc()
        self._job_event(
            "job_timeout", job, limit=limit, elapsed=round(elapsed, 6)
        )

    def on_heartbeat_lost(self, job, silent_for: float) -> None:
        self.registry.counter("heartbeats.lost").inc()
        self._job_event("heartbeat_lost", job, silent_for=round(silent_for, 6))

    def on_worker_lost(self, job, exitcode: int | None) -> None:
        self.registry.counter("workers.lost").inc()
        self._job_event("worker_lost", job, exitcode=exitcode)

    def on_cancelled(self, job, reason: str) -> None:
        self.registry.counter("jobs.cancelled").inc()
        self._job_event("job_cancelled", job, reason=reason)

    def on_pool_shrink(self, size: int, reason: str) -> None:
        self.registry.counter("pool.shrinks").inc()
        self.registry.gauge("pool.size").set(size)
        self.event("pool_shrink", size=size, reason=reason)

    def on_cache_miss(self, job) -> None:
        self.registry.counter("cache.misses").inc()

    def on_quarantine(self, path: str, reason: str) -> None:
        self.registry.counter("cache.quarantined").inc()
        self.event("cache_quarantine", path=path, reason=reason)

    def on_circuit_open(self, failures: int, cancelled: int) -> None:
        self.event("circuit_open", failures=failures, cancelled=cancelled)

    # ------------------------------------------------------------------
    def header(self) -> dict:
        out = {
            "type": "header",
            "schema": SERVICE_SCHEMA,
            "jobs": self.jobs,
            "workers": self.workers,
            "started_at": round(self.started_at, 6),
            "params": self.params,
        }
        if self.batch_id is not None:
            out["batch_id"] = self.batch_id
        return out

    def summary_record(self) -> dict:
        return {"type": "summary", "aggregates": self.registry.snapshot()}

    def metrics_lines(self) -> list[str]:
        stream = [self.header(), *self.records, self.summary_record()]
        return [json.dumps(rec) for rec in stream]

    def save(self, path: str | Path) -> Path:
        """Atomically write the JSONL stream to ``path``."""
        from repro.util.atomic_io import atomic_write_text

        return atomic_write_text(Path(path), "\n".join(self.metrics_lines()) + "\n")
