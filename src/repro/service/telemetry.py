"""Batch-level telemetry for the job service.

Mirrors the run-level :mod:`repro.telemetry` shape one level up: a
:class:`ServiceTelemetry` collects an ordered stream of scheduler
events (launches, heartbeats lost, retries, worker deaths, cache hits
and quarantines, pool shrinks, circuit-breaker trips) plus a
:class:`~repro.telemetry.metrics.MetricsRegistry` of batch-wide
counters and the queue-depth gauge, and writes them as JSONL — schema
``repro-service/1``: a ``header`` line, ``event`` lines in occurrence
order (each stamped with wall seconds since batch start and the queue
depth at that moment), and a closing ``summary`` with the registry
snapshot.

Unlike run telemetry there is no zero-cost clause to honour — the
scheduler lives entirely off the virtual clocks — so the stream is
always recorded and saving it is opt-in (``repro submit --metrics``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["ServiceTelemetry", "SERVICE_SCHEMA"]

#: Schema marker on the first line of every service metrics stream.
SERVICE_SCHEMA = "repro-service/1"


class ServiceTelemetry:
    """Event stream + metrics registry for one scheduler batch."""

    def __init__(self, *, jobs: int, workers: int, params: dict | None = None) -> None:
        self.jobs = int(jobs)
        self.workers = int(workers)
        self.params = dict(params or {})
        self.registry = MetricsRegistry()
        self.records: list[dict] = []
        self._t0 = time.monotonic()
        self._queue_depth = 0

    # ------------------------------------------------------------------
    def set_queue_depth(self, depth: int) -> None:
        """Update the queue-depth gauge (stamped onto subsequent events)."""
        self._queue_depth = int(depth)
        self.registry.gauge("queue.depth").set(depth)

    def event(self, kind: str, **fields) -> dict:
        """Record one scheduler event; returns the stored record."""
        record = {
            "type": "event",
            "kind": kind,
            "t": round(time.monotonic() - self._t0, 6),
            "queue_depth": self._queue_depth,
            **fields,
        }
        self.records.append(record)
        return record

    # convenience wrappers keeping counter names in one place ------------
    def on_launch(self, job: str, attempt: int) -> None:
        self.registry.counter("jobs.launched").inc()
        self.event("job_launched", job=job, attempt=attempt)

    def on_heartbeat(self, job: str, iteration: int) -> None:
        self.registry.counter("heartbeats.received").inc()

    def on_done(self, job: str, wall: float, cached: bool) -> None:
        self.registry.counter("jobs.completed").inc()
        if cached:
            self.registry.counter("cache.hits").inc()
        self.event("job_done", job=job, wall=round(wall, 6), cached=cached)

    def on_retry(self, job: str, attempt: int, reason: str, delay: float) -> None:
        self.registry.counter("jobs.retries").inc()
        self.event(
            "job_retry", job=job, attempt=attempt, reason=reason,
            delay=round(delay, 6),
        )

    def on_failed(self, job: str, reason: str) -> None:
        self.registry.counter("jobs.failed").inc()
        self.event("job_failed", job=job, reason=reason)

    def on_timeout(self, job: str, limit: float, elapsed: float) -> None:
        self.registry.counter("jobs.timeouts").inc()
        self.event(
            "job_timeout", job=job, limit=limit, elapsed=round(elapsed, 6)
        )

    def on_heartbeat_lost(self, job: str, silent_for: float) -> None:
        self.registry.counter("heartbeats.lost").inc()
        self.event("heartbeat_lost", job=job, silent_for=round(silent_for, 6))

    def on_worker_lost(self, job: str, exitcode: int | None) -> None:
        self.registry.counter("workers.lost").inc()
        self.event("worker_lost", job=job, exitcode=exitcode)

    def on_cancelled(self, job: str, reason: str) -> None:
        self.registry.counter("jobs.cancelled").inc()
        self.event("job_cancelled", job=job, reason=reason)

    def on_pool_shrink(self, size: int, reason: str) -> None:
        self.registry.counter("pool.shrinks").inc()
        self.registry.gauge("pool.size").set(size)
        self.event("pool_shrink", size=size, reason=reason)

    def on_cache_miss(self, job: str) -> None:
        self.registry.counter("cache.misses").inc()

    def on_quarantine(self, path: str, reason: str) -> None:
        self.registry.counter("cache.quarantined").inc()
        self.event("cache_quarantine", path=path, reason=reason)

    def on_circuit_open(self, failures: int, cancelled: int) -> None:
        self.event("circuit_open", failures=failures, cancelled=cancelled)

    # ------------------------------------------------------------------
    def header(self) -> dict:
        return {
            "type": "header",
            "schema": SERVICE_SCHEMA,
            "jobs": self.jobs,
            "workers": self.workers,
            "params": self.params,
        }

    def summary_record(self) -> dict:
        return {"type": "summary", "aggregates": self.registry.snapshot()}

    def metrics_lines(self) -> list[str]:
        stream = [self.header(), *self.records, self.summary_record()]
        return [json.dumps(rec) for rec in stream]

    def save(self, path: str | Path) -> Path:
        """Atomically write the JSONL stream to ``path``."""
        from repro.util.atomic_io import atomic_write_text

        return atomic_write_text(Path(path), "\n".join(self.metrics_lines()) + "\n")
