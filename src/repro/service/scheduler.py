"""Supervised multi-run scheduler: the heart of the job service.

:class:`Scheduler` drains a batch of :class:`~repro.service.jobs.JobSpec`
through a pool of worker processes (one process per job attempt,
at most ``workers`` live at a time) with full fault tolerance:

* **cache first** — before a job launches, the result cache is
  consulted under the job's content hash; a verified hit completes the
  job without a process (bit-identical to the fresh run).
* **heartbeats** — workers report after every iteration; a worker
  silent past ``heartbeat_timeout`` is declared hung, killed, and the
  job rescheduled.  The watchdog arms at the worker's first message
  (``started``), so simulation construction/restore time never counts
  against the heartbeat budget; a worker hung *before* its first
  message is bounded by ``timeout``.
* **deadlines** — ``timeout`` bounds each attempt's wall clock; on
  expiry the worker is killed and the attempt counts as a
  :class:`~repro.util.errors.JobTimeout`.
* **retry with backoff** — a failed/killed/timed-out attempt is retried
  up to ``retries`` times after an exponential backoff with
  deterministic jitter (seeded by job key and attempt, so reruns of a
  batch produce identical schedules).  Retries resume from the job's
  scratch checkpoint, re-doing only iterations past the last
  checkpoint.
* **graceful degradation** — repeated worker deaths shrink the pool
  (never below one); a bounded queue keeps huge sweeps from
  materializing all supervision state at once; ``max_failures`` is a
  circuit breaker that stops launching after N distinct job failures
  and cancels the remainder, reporting everything in the batch report.
  A live job that fails retryably *after* the breaker opened is
  cancelled too (never rescheduled — nothing launches once the circuit
  is open), so the batch always terminates.

The returned batch report (schema ``repro-batch/1``) records every
job's terminal state, attempts, retries (with reasons and delays),
cache provenance, and final-state summary; ``repro jobs`` renders it.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import random
import shutil
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as mp_wait
from pathlib import Path

from repro.service.cache import ResultCache
from repro.service.jobs import BATCH_SCHEMA, JobRecord, JobSpec, JobState
from repro.service.queue import JobQueue
from repro.service.telemetry import ServiceTelemetry
from repro.service.worker import scratch_checkpoint, worker_main
from repro.util import require

__all__ = ["Scheduler", "run_batch", "render_report", "backoff_delay"]

#: Supervision poll interval (seconds): the latency floor for detecting
#: completions, deadline expiries, and dead workers.
_TICK = 0.05

#: Minimum seconds between Prometheus snapshot flushes during the loop.
_PROM_EVERY = 0.5


def derive_batch_id(jobs: list[JobSpec]) -> str:
    """Deterministic batch identity: hash of the sorted job keys.

    The same sweep resubmitted gets the same ``batch_id`` — batch
    identity is content identity, like job identity, so reruns of a
    batch correlate across service streams.
    """
    digest = hashlib.sha256(
        "\n".join(sorted(spec.key for spec in jobs)).encode()
    ).hexdigest()
    return "batch-" + digest[:12]


def backoff_delay(
    key: str, attempt: int, *, base: float = 0.05, cap: float = 2.0
) -> float:
    """Exponential backoff with deterministic jitter.

    ``base * 2**attempt`` capped at ``cap``, scaled into ``[0.5, 1.0)``
    by a jitter seeded from ``(key, attempt)`` — retry storms decorrelate
    across jobs, yet a rerun of the same batch reproduces the same
    delays (determinism is a debugging feature everywhere in this repo).
    """
    rng = random.Random(f"{key}:{attempt}")
    raw = min(cap, base * (2.0**attempt))
    return raw * (0.5 + rng.random() / 2.0)


@dataclass
class _Live:
    """Supervision state of one running worker."""

    record: JobRecord
    process: mp.Process
    conn: object
    started: float
    last_beat: float
    finished: bool = False  #: terminal message received (EOF is then benign)
    beating: bool = False  #: first message received — heartbeat watchdog armed


@dataclass
class _Counters:
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    cache_hits: int = 0
    retries: int = 0
    timeouts: int = 0
    heartbeats_lost: int = 0
    worker_losses: int = 0
    quarantined: int = 0
    pool_shrinks: int = 0

    def to_dict(self) -> dict:
        return dict(vars(self))


@dataclass
class Scheduler:
    """Fault-tolerant batch scheduler (see module docstring).

    ``retries`` is the number of *re*-tries: a job gets at most
    ``retries + 1`` attempts.  ``max_failures=0`` disables the circuit
    breaker.  ``timeout`` / ``heartbeat_timeout`` of ``None`` disable
    the respective watchdog.
    """

    workers: int = 2
    cache: ResultCache | str | Path | None = None
    workdir: str | Path | None = None
    timeout: float | None = None
    heartbeat_timeout: float | None = None
    retries: int = 2
    max_failures: int = 0
    checkpoint_every: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    queue_maxsize: int | None = None
    shrink_after: int = 2  #: consecutive worker losses that shed one slot
    progress: object = None  #: optional callable(str) for status lines
    batch_id: str | None = None  #: override the content-derived batch id
    obs_dir: str | Path | None = None  #: live service stream + per-job telemetry
    prom_dir: str | Path | None = None  #: Prometheus textfile snapshots
    telemetry: ServiceTelemetry = field(init=False, default=None)

    def __post_init__(self) -> None:
        require(self.workers >= 1, "workers must be >= 1")
        require(self.retries >= 0, "retries must be >= 0")
        require(self.checkpoint_every >= 1, "checkpoint_every must be >= 1")
        require(self.max_failures >= 0, "max_failures must be >= 0")
        if self.timeout is not None:
            require(self.timeout > 0, "timeout must be > 0 seconds")
        if self.heartbeat_timeout is not None:
            require(self.heartbeat_timeout > 0, "heartbeat_timeout must be > 0")
        if isinstance(self.cache, (str, Path)):
            self.cache = ResultCache(self.cache)
        try:
            self._ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix fallback
            self._ctx = mp.get_context()

    # ------------------------------------------------------------------
    def run(self, jobs: list[JobSpec]) -> dict:
        """Drain ``jobs`` to terminal states; returns the batch report."""
        require(len(jobs) > 0, "a batch needs at least one job")
        workdir = Path(self.workdir) if self.workdir is not None else None
        scratch_workdir = False
        if workdir is None:
            if self.cache is not None:
                workdir = self.cache.root / "work"
            else:
                # no cache to anchor the documented <cache>/work default:
                # use a private temp dir, never the caller's cwd
                workdir = Path(tempfile.mkdtemp(prefix="repro-jobs-"))
                scratch_workdir = True
        workdir.mkdir(parents=True, exist_ok=True)

        records = [JobRecord(spec=spec) for spec in jobs]
        batch_id = self.batch_id or derive_batch_id(jobs)
        obs_dir = Path(self.obs_dir) if self.obs_dir is not None else None
        prom_dir = Path(self.prom_dir) if self.prom_dir is not None else None
        tel = self.telemetry = ServiceTelemetry(
            jobs=len(records),
            workers=self.workers,
            batch_id=batch_id,
            params={
                "timeout": self.timeout,
                "heartbeat_timeout": self.heartbeat_timeout,
                "retries": self.retries,
                "max_failures": self.max_failures,
                "checkpoint_every": self.checkpoint_every,
            },
        )
        if obs_dir is not None:
            obs_dir.mkdir(parents=True, exist_ok=True)
            tel.stream_to(obs_dir / "service.jsonl")
        last_prom = 0.0

        def flush_prom(force: bool = False) -> None:
            nonlocal last_prom
            if prom_dir is None:
                return
            now = time.monotonic()
            if not force and now - last_prom < _PROM_EVERY:
                return
            last_prom = now
            from repro.obs.prom import write_prom_snapshot

            write_prom_snapshot(
                prom_dir,
                tel.registry,
                name="repro-batch.prom",
                labels={"batch": batch_id},
            )

        counters = _Counters()
        queue = JobQueue(maxsize=self.queue_maxsize)
        backlog: deque[JobRecord] = deque(records)
        waiting: list[tuple[float, JobRecord]] = []
        live: dict[object, _Live] = {}
        pool_size = max(1, min(self.workers, len(records)))
        consecutive_losses = 0
        circuit_open = False
        t_batch0 = time.monotonic()

        def say(text: str) -> None:
            if self.progress is not None:
                self.progress(text)

        def finish_done(rec: JobRecord, wall: float, payload: dict, cached: bool) -> None:
            nonlocal consecutive_losses
            rec.state = JobState.DONE
            rec.cached = cached
            rec.payload = payload
            rec.wall += wall
            counters.completed += 1
            if cached:
                counters.cache_hits += 1
            else:
                consecutive_losses = 0
                if self.cache is not None:
                    self.cache.put(rec.key, payload)
                ck = scratch_checkpoint(workdir, rec.key)
                if ck.exists():
                    ck.unlink()
            tel.on_done(rec, rec.wall, cached)
            flush_prom()
            say(f"done {rec.name}" + (" (cache)" if cached else ""))

        def note_quarantines() -> None:
            if self.cache is None:
                return
            while counters.quarantined < len(self.cache.quarantined):
                path, reason = self.cache.quarantined[counters.quarantined]
                counters.quarantined += 1
                tel.on_quarantine(path, reason)
                say(f"quarantined corrupt cache entry: {path}")

        def open_circuit() -> None:
            nonlocal circuit_open
            if circuit_open:
                return
            circuit_open = True
            cancelled = 0
            for rec in list(backlog) + [r for _, r in waiting]:
                rec.state = JobState.CANCELLED
                rec.error = (
                    f"cancelled: the batch hit max_failures={self.max_failures}"
                )
                cancelled += 1
            while queue:
                rec = queue.pop()
                rec.state = JobState.CANCELLED
                rec.error = (
                    f"cancelled: the batch hit max_failures={self.max_failures}"
                )
                cancelled += 1
            backlog.clear()
            waiting.clear()
            counters.cancelled += cancelled
            tel.on_circuit_open(counters.failed, cancelled)
            say(
                f"circuit breaker open after {counters.failed} failures; "
                f"{cancelled} job(s) cancelled"
            )

        def retry_or_fail(rec: JobRecord, reason: str, wall: float) -> None:
            rec.wall += wall
            attempt = rec.attempt
            if attempt >= self.retries:
                rec.state = JobState.FAILED
                rec.error = reason
                counters.failed += 1
                tel.on_failed(rec, reason)
                say(f"FAILED {rec.name}: {reason}")
                if self.max_failures and counters.failed >= self.max_failures:
                    open_circuit()
                return
            if circuit_open:
                # the breaker tripped while this attempt was in flight;
                # a retry would never launch (launches are gated on the
                # closed circuit) and would spin the loop forever
                rec.state = JobState.CANCELLED
                rec.error = (
                    f"cancelled after {reason}: the batch circuit breaker "
                    f"is open (max_failures={self.max_failures})"
                )
                counters.cancelled += 1
                tel.on_cancelled(rec, reason)
                say(f"cancelled {rec.name} (circuit open): {reason}")
                return
            delay = backoff_delay(
                rec.key, attempt, base=self.backoff_base, cap=self.backoff_cap
            )
            rec.retries.append(
                {"attempt": attempt, "reason": reason, "delay": round(delay, 6)}
            )
            rec.attempt = attempt + 1
            rec.state = JobState.WAITING
            waiting.append((time.monotonic() + delay, rec))
            counters.retries += 1
            tel.on_retry(rec, rec.attempt, reason, delay)
            say(f"retry {rec.name} (attempt {rec.attempt + 1}) in {delay:.2f}s: {reason}")

        def kill_entry(entry: _Live) -> None:
            proc = entry.process
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
                if proc.is_alive():  # pragma: no cover - terminate suffices normally
                    proc.kill()
                    proc.join(5.0)
            entry.conn.close()

        def worker_lost(entry: _Live, reason: str) -> None:
            nonlocal pool_size, consecutive_losses
            counters.worker_losses += 1
            consecutive_losses += 1
            tel.on_worker_lost(entry.record, entry.process.exitcode)
            if consecutive_losses >= self.shrink_after and pool_size > 1:
                pool_size -= 1
                consecutive_losses = 0
                counters.pool_shrinks += 1
                tel.on_pool_shrink(
                    pool_size,
                    f"{self.shrink_after} consecutive worker losses",
                )
                say(f"pool shrunk to {pool_size} worker slot(s)")
            retry_or_fail(
                entry.record, reason, time.monotonic() - entry.started
            )

        def launch(rec: JobRecord) -> None:
            parent, child = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=worker_main,
                args=(
                    child,
                    rec.spec.to_dict(),
                    str(workdir),
                    self.checkpoint_every,
                    rec.attempt,
                    {
                        "batch_id": batch_id,
                        "job_id": rec.key,
                        "attempt": rec.attempt,
                    },
                    str(obs_dir) if obs_dir is not None else None,
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            rec.state = JobState.RUNNING
            now = time.monotonic()
            live[parent] = _Live(rec, proc, parent, now, now)
            tel.on_launch(rec, rec.attempt)
            say(f"launch {rec.name} (attempt {rec.attempt + 1})")

        # -- main supervision loop --------------------------------------
        while live or backlog or waiting or queue:
            now = time.monotonic()
            # promote retries whose backoff elapsed
            due = [w for w in waiting if w[0] <= now]
            if due:
                waiting[:] = [w for w in waiting if w[0] > now]
                for _, rec in due:
                    rec.state = JobState.PENDING
                    backlog.append(rec)
            while backlog and not queue.full:
                queue.push(backlog.popleft())
            tel.set_queue_depth(len(queue) + len(backlog))

            # launch up to the (possibly shrunk) pool size
            while not circuit_open and queue and len(live) < pool_size:
                rec = queue.pop()
                hit = self.cache.get(rec.key) if self.cache is not None else None
                note_quarantines()
                if hit is not None:
                    finish_done(rec, 0.0, hit, cached=True)
                    continue
                tel.on_cache_miss(rec)
                launch(rec)
            flush_prom()

            if not live:
                if waiting:
                    pause = max(0.0, min(t for t, _ in waiting) - time.monotonic())
                    time.sleep(min(pause, _TICK) or 0.001)
                continue

            def drain(entry: _Live) -> None:
                """Consume every message buffered on one worker's pipe."""
                conn = entry.conn
                while True:
                    try:
                        if not conn.poll():
                            return
                        kind, body = conn.recv()
                    except (EOFError, OSError):
                        # pipe closed: normal after done/failed, a death
                        # otherwise — the supervision pass settles it
                        return
                    if kind == "started":
                        entry.last_beat = time.monotonic()
                        entry.beating = True
                        if body.get("iteration", 0) > 0:
                            entry.record.resumed_from = int(body["iteration"])
                    elif kind == "heartbeat":
                        entry.last_beat = time.monotonic()
                        entry.beating = True
                        tel.on_heartbeat(
                            entry.record,
                            body.get("iteration", -1),
                            total=body.get("total"),
                            imbalance=body.get("imbalance"),
                        )
                    elif kind == "done":
                        entry.finished = True
                        finish_done(
                            entry.record,
                            time.monotonic() - entry.started,
                            body["payload"],
                            cached=False,
                        )
                    elif kind == "failed":
                        entry.finished = True
                        err = body["error"]
                        retry_or_fail(
                            entry.record,
                            f"{type(err).__name__}: {err}",
                            time.monotonic() - entry.started,
                        )

            # drain messages from whoever has something to say
            for conn in mp_wait(list(live), timeout=_TICK):
                drain(live[conn])

            # supervision pass: deadlines, heartbeats, silent deaths
            now = time.monotonic()
            for conn, entry in list(live.items()):
                rec = entry.record
                if entry.finished:
                    entry.process.join(5.0)
                    del live[conn]
                    continue
                if self.timeout is not None and now - entry.started >= self.timeout:
                    kill_entry(entry)
                    del live[conn]
                    counters.timeouts += 1
                    elapsed = now - entry.started
                    tel.on_timeout(rec, self.timeout, elapsed)
                    retry_or_fail(
                        rec,
                        f"JobTimeout: exceeded the {self.timeout:g}s deadline "
                        f"after {elapsed:.2f}s",
                        elapsed,
                    )
                    continue
                if (
                    self.heartbeat_timeout is not None
                    and entry.beating  # armed at the first worker message:
                    # construction/restore time is not heartbeat silence
                    and now - entry.last_beat >= self.heartbeat_timeout
                ):
                    silent = now - entry.last_beat
                    kill_entry(entry)
                    del live[conn]
                    counters.heartbeats_lost += 1
                    tel.on_heartbeat_lost(rec, silent)
                    retry_or_fail(
                        rec,
                        f"hung worker: no heartbeat for {silent:.2f}s "
                        f"(budget {self.heartbeat_timeout:g}s)",
                        now - entry.started,
                    )
                    continue
                if not entry.process.is_alive():
                    # the exit may have raced the drain above: final
                    # messages can still sit in the pipe buffer — read
                    # them before declaring the worker lost
                    drain(entry)
                    if entry.finished:
                        entry.process.join(5.0)
                        del live[conn]
                        continue
                    ec = entry.process.exitcode
                    entry.conn.close()
                    del live[conn]
                    worker_lost(entry, f"worker died (exitcode {ec})")

        # -- report -----------------------------------------------------
        if scratch_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
        tel.close_stream()
        flush_prom(force=True)
        ok = all(rec.state == JobState.DONE for rec in records)
        report = {
            "schema": BATCH_SCHEMA,
            "batch_id": batch_id,
            "params": {
                "workers": self.workers,
                "pool_size_final": pool_size,
                "timeout": self.timeout,
                "heartbeat_timeout": self.heartbeat_timeout,
                "retries": self.retries,
                "max_failures": self.max_failures,
                "checkpoint_every": self.checkpoint_every,
                "cache": str(self.cache.root) if self.cache is not None else None,
            },
            "ok": ok,
            "circuit_open": circuit_open,
            "wall": round(time.monotonic() - t_batch0, 6),
            "counters": counters.to_dict(),
            "jobs": [rec.to_dict() for rec in records],
        }
        self._records = records  # tests inspect payloads post-run
        return report


def run_batch(jobs: list[JobSpec], **kwargs) -> dict:
    """One-shot convenience: ``Scheduler(**kwargs).run(jobs)``."""
    return Scheduler(**kwargs).run(jobs)


def render_report(report: dict, *, events: list[dict] | None = None) -> str:
    """Terminal rendering of a batch report (``repro jobs``).

    ``events`` (optional) is the batch's service stream — the event
    records of the ``service.jsonl`` next to the report.  When given,
    the *attempts* and *cache* columns are sourced from the stream
    (launch counts and ``job_done.cached`` flags) instead of the report
    snapshot, so the table reflects what actually happened on the wire.
    """
    from repro.telemetry.report import format_table

    if report.get("schema") != BATCH_SCHEMA:
        raise ValueError(
            f"not a batch report (schema {report.get('schema')!r}, "
            f"expected {BATCH_SCHEMA!r})"
        )
    launches: dict[str, int] = {}
    stream_cached: dict[str, bool] = {}
    if events is not None:
        for rec in events:
            if rec.get("type") != "event":
                continue
            job = rec.get("job")
            if rec.get("kind") == "job_launched":
                launches[job] = launches.get(job, 0) + 1
            elif rec.get("kind") == "job_done":
                stream_cached[job] = bool(rec.get("cached"))
    rows = []
    for job in report["jobs"]:
        state = job["state"]
        note = ""
        if job.get("resumed_from") is not None:
            note = f"resumed@{job['resumed_from']}"
        if job.get("error"):
            note = (note + " " if note else "") + job["error"][:40]
        if events is not None:
            attempts = launches.get(job["name"], job["attempts"])
            cached = stream_cached.get(job["name"], job.get("cached", False))
        else:
            attempts = job["attempts"]
            cached = job.get("cached", False)
        rows.append(
            [
                job["name"],
                state,
                attempts,
                len(job.get("retries", [])),
                "yes" if cached else "no",
                f"{job['wall']:.2f}",
                job["key"][:12],
                note,
            ]
        )
    c = report["counters"]
    title = f"batch report ({len(rows)} jobs, wall {report['wall']:.2f}s)"
    if report.get("batch_id"):
        title += f" — {report['batch_id']}"
    lines = [
        format_table(
            ["job", "state", "attempts", "retries", "cache", "wall (s)", "key", "notes"],
            rows,
            title=title,
        ),
        "",
        (
            f"completed {c['completed']}  failed {c['failed']}  "
            f"cancelled {c['cancelled']}  cache hits {c['cache_hits']}  "
            f"retries {c['retries']}  timeouts {c['timeouts']}  "
            f"hung {c['heartbeats_lost']}  worker losses {c['worker_losses']}  "
            f"quarantined {c['quarantined']}"
        ),
        "batch: OK" if report["ok"] else (
            "batch: FAILED (circuit breaker open)"
            if report["circuit_open"]
            else "batch: FAILED"
        ),
    ]
    return "\n".join(lines)
