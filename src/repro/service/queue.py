"""Priority job queue with bounded depth (scheduler backpressure).

Jobs pop in (priority desc, submission order) — a stable priority queue
over :class:`~repro.service.jobs.JobRecord`.  ``maxsize`` bounds the
*ready* set: the scheduler keeps everything beyond it in a backlog and
refills as slots free, so a 10 000-job sweep never materializes 10 000
heap entries of live supervision state at once.
"""

from __future__ import annotations

import heapq

from repro.service.jobs import JobRecord
from repro.util import require

__all__ = ["JobQueue"]


class JobQueue:
    """Bounded priority queue of :class:`JobRecord`.

    ``push`` on a full queue raises ``IndexError`` (the scheduler checks
    :attr:`full` first — hitting the guard is a programming error, not a
    runtime condition).
    """

    def __init__(self, maxsize: int | None = None) -> None:
        if maxsize is not None:
            require(maxsize >= 1, "queue maxsize must be >= 1")
        self.maxsize = maxsize
        self._heap: list[tuple[int, int, JobRecord]] = []
        self._seq = 0  #: tie-breaker preserving submission order

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def full(self) -> bool:
        return self.maxsize is not None and len(self._heap) >= self.maxsize

    def push(self, record: JobRecord) -> None:
        if self.full:
            raise IndexError(
                f"queue is full (maxsize={self.maxsize}); check .full before push"
            )
        heapq.heappush(self._heap, (-record.spec.priority, self._seq, record))
        self._seq += 1

    def pop(self) -> JobRecord:
        """Highest-priority (then oldest) record; ``IndexError`` if empty."""
        return heapq.heappop(self._heap)[2]

    def peek(self) -> JobRecord:
        return self._heap[0][2]
