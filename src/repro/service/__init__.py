"""Fault-tolerant multi-run job service (DESIGN.md §5.7).

Submit a batch of simulation jobs, get every result back or a
structured account of why not: a supervised :class:`Scheduler` runs
jobs on worker processes with heartbeats, per-job deadlines, retry with
exponential backoff, checkpoint-based resume of interrupted attempts,
pool shrinking under repeated worker loss, a ``max_failures`` circuit
breaker — and an integrity-checked, content-addressed
:class:`ResultCache` that serves repeat submissions bit-identically
without running anything.
"""

from repro.service.cache import CACHE_SCHEMA, ResultCache, payload_digest
from repro.service.jobs import (
    BATCH_SCHEMA,
    JobRecord,
    JobSpec,
    JobState,
    canonical_json,
    job_key,
)
from repro.service.queue import JobQueue
from repro.service.scheduler import (
    Scheduler,
    backoff_delay,
    derive_batch_id,
    render_report,
    run_batch,
)
from repro.service.sweep import expand_jobs, load_jobs
from repro.service.telemetry import SERVICE_SCHEMA, ServiceTelemetry
from repro.service.worker import job_artifact_stem

__all__ = [
    "BATCH_SCHEMA",
    "CACHE_SCHEMA",
    "SERVICE_SCHEMA",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobState",
    "ResultCache",
    "Scheduler",
    "ServiceTelemetry",
    "backoff_delay",
    "canonical_json",
    "derive_batch_id",
    "expand_jobs",
    "job_artifact_stem",
    "job_key",
    "load_jobs",
    "payload_digest",
    "render_report",
    "run_batch",
]
